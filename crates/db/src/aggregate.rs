//! Aggregate functions: the seven used by the paper's workload study
//! (count, sum, avg, min, max, median, stddev) plus `COUNT(DISTINCT ...)`.

use crate::error::{DbError, Result};
use crate::expr::CompiledExpr;
use crate::morsel;
use crate::table::Row;
use crate::value::{Value, ValueKey};
use std::collections::HashSet;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-null values.
    Count,
    /// `COUNT(DISTINCT expr)`.
    CountDistinct,
    /// `SUM(expr)` over non-null numeric values (fixed-shape tree fold).
    Sum,
    /// `AVG(expr)` — tree-folded sum divided by the non-null count.
    Avg,
    /// `MIN(expr)` under `total_cmp` ordering (first-appearance wins ties).
    Min,
    /// `MAX(expr)` under `total_cmp` ordering (first-appearance wins ties).
    Max,
    /// Median of non-null numeric values (average of middle two for even n).
    Median,
    /// Sample standard deviation (n−1 denominator).
    Stddev,
}

impl AggFunc {
    /// Resolve a SQL function name (+ DISTINCT flag) to an aggregate.
    pub fn parse(name: &str, distinct: bool, wildcard: bool) -> Option<AggFunc> {
        match name {
            "count" if wildcard => Some(AggFunc::CountStar),
            "count" if distinct => Some(AggFunc::CountDistinct),
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" | "mean" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "median" => Some(AggFunc::Median),
            "stddev" | "stddev_samp" => Some(AggFunc::Stddev),
            _ => None,
        }
    }
}

/// A fully-compiled aggregate call: the function plus its argument
/// expression (absent for `COUNT(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Which aggregate function to apply.
    pub func: AggFunc,
    /// The compiled argument expression (`None` for `COUNT(*)`).
    pub arg: Option<CompiledExpr>,
}

impl AggSpec {
    /// Compute the aggregate over a set of input rows. `positions[i]` is
    /// row `i`'s position in the post-WHERE input sequence — the same
    /// position the columnar engine sees as its selection index — and
    /// `fold_rows` is the reduction-grid chunk size, so `SUM`/`AVG`/
    /// `STDDEV` evaluate the exact fixed-shape reduction tree the
    /// vectorized engine evaluates (bit-identical floats on either
    /// engine, at any parallelism).
    pub fn compute(
        &self,
        rows: &[&[Value]],
        positions: &[usize],
        fold_rows: usize,
    ) -> Result<Value> {
        debug_assert_eq!(rows.len(), positions.len());
        match self.func {
            AggFunc::CountStar => Ok(Value::Int(rows.len() as i64)),
            AggFunc::Count => {
                let arg = self.arg_expr()?;
                let mut n = 0i64;
                for row in rows {
                    if !arg.eval(row)?.is_null() {
                        n += 1;
                    }
                }
                Ok(Value::Int(n))
            }
            AggFunc::CountDistinct => {
                let arg = self.arg_expr()?;
                let mut seen: HashSet<ValueKey> = HashSet::new();
                for row in rows {
                    let v = arg.eval(row)?;
                    if !v.is_null() {
                        seen.insert(ValueKey::from(&v));
                    }
                }
                Ok(Value::Int(seen.len() as i64))
            }
            AggFunc::Sum => {
                let pairs = self.chunked_args(rows, positions, fold_rows)?;
                if pairs.is_empty() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(tree_sum(&pairs)))
                }
            }
            AggFunc::Avg => {
                let pairs = self.chunked_args(rows, positions, fold_rows)?;
                if pairs.is_empty() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(tree_sum(&pairs) / pairs.len() as f64))
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let arg = self.arg_expr()?;
                let mut best: Option<Value> = None;
                for row in rows {
                    let v = arg.eval(row)?;
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = match v.total_cmp(&b) {
                                std::cmp::Ordering::Less => self.func == AggFunc::Min,
                                std::cmp::Ordering::Greater => self.func == AggFunc::Max,
                                std::cmp::Ordering::Equal => false,
                            };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(best.unwrap_or(Value::Null))
            }
            AggFunc::Median => {
                let pairs = self.chunked_args(rows, positions, fold_rows)?;
                Ok(median_of(pairs.into_iter().map(|(_, x)| x).collect()))
            }
            AggFunc::Stddev => Ok(stddev_tree(&self.chunked_args(rows, positions, fold_rows)?)),
        }
    }

    fn arg_expr(&self) -> Result<&CompiledExpr> {
        self.arg.as_ref().ok_or_else(|| {
            DbError::InvalidAggregate(format!("{:?} requires an argument", self.func))
        })
    }

    /// Evaluate the argument over all rows, dropping NULLs, requiring
    /// numeric values; each kept value is tagged with its row's
    /// fold-chunk id (`position / fold_rows`).
    fn chunked_args(
        &self,
        rows: &[&[Value]],
        positions: &[usize],
        fold_rows: usize,
    ) -> Result<Vec<(usize, f64)>> {
        let arg = self.arg_expr()?;
        let step = fold_rows.max(1);
        let mut out = Vec::with_capacity(rows.len());
        for (row, &pos) in rows.iter().zip(positions) {
            let v = arg.eval(row)?;
            if v.is_null() {
                continue;
            }
            let x = v.as_f64().ok_or_else(|| DbError::TypeMismatch {
                context: format!("{:?} argument", self.func),
                expected: "number".to_string(),
                found: v.type_name().to_string(),
            })?;
            out.push((pos / step, x));
        }
        Ok(out)
    }
}

// ---- fixed-shape reduction tree ------------------------------------------
//
// `SUM`/`AVG`/`STDDEV` accumulate through a reduction tree whose shape is
// a pure function of the data layout — never of worker count or morsel
// scheduling. The input sequence (the post-WHERE selection, in row order)
// is cut into *fold chunks* of `fold_rows` positions each (position `p`
// belongs to chunk `p / fold_rows`). For each group, every chunk holding
// at least one of the group's values contributes exactly one *leaf*: the
// 8-lane interleaved sum of those values ([`leaf_sum`], the
// autovectorizable kernel). The leaves then combine bottom-up in adjacent
// pairs ([`tree_combine`]). Sequential and parallel execution, and both
// engines, evaluate this same function; scheduling morsels always cover
// whole fold chunks (`morsel::Parallelism::sched_rows` is a multiple of
// `fold_rows`), so a leaf is never split across workers and the result
// bits cannot move with the thread count. See docs/ARCHITECTURE.md.

/// Interleaved accumulator lanes in the leaf kernel. Eight f64 lanes fill
/// one or two vector registers on contemporary SIMD widths.
pub(crate) const FOLD_LANES: usize = 8;

/// Reduce the eight lane accumulators in a fixed pairwise tree.
#[inline]
fn combine_lanes(acc: &[f64; FOLD_LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Sum one reduction leaf of dense values: the i-th value lands in lane
/// `i % 8`, and the lanes combine pairwise. Interleaving removes the
/// serial dependency between consecutive float additions, so the loop
/// autovectorizes; the streaming form ([`FoldAcc::push`]) applies the
/// identical per-lane additions and is therefore bit-identical.
#[inline]
pub(crate) fn leaf_sum(vals: &[f64]) -> f64 {
    let mut acc = [0.0f64; FOLD_LANES];
    let mut chunks = vals.chunks_exact(FOLD_LANES);
    for c in chunks.by_ref() {
        for (a, x) in acc.iter_mut().zip(c) {
            *a += *x;
        }
    }
    for (a, x) in acc.iter_mut().zip(chunks.remainder()) {
        *a += *x;
    }
    combine_lanes(&acc)
}

/// [`leaf_sum`] over an `i64` column slice, casting each value exactly
/// where the scalar path casts it so the per-lane addition sequence is
/// identical.
#[inline]
pub(crate) fn leaf_sum_ints(vals: &[i64]) -> f64 {
    let mut acc = [0.0f64; FOLD_LANES];
    let mut chunks = vals.chunks_exact(FOLD_LANES);
    for c in chunks.by_ref() {
        for (a, x) in acc.iter_mut().zip(c) {
            *a += *x as f64;
        }
    }
    for (a, x) in acc.iter_mut().zip(chunks.remainder()) {
        *a += *x as f64;
    }
    combine_lanes(&acc)
}

/// Combine per-chunk leaf sums bottom-up in adjacent pairs —
/// `(l0+l1), (l2+l3), …` with an odd tail carried up unchanged — until
/// one value remains. The association is a pure function of
/// `level.len()`: the same leaves produce the same bits however many
/// workers computed them.
pub(crate) fn tree_combine(mut level: Vec<f64>) -> f64 {
    debug_assert!(!level.is_empty(), "tree_combine needs at least one leaf");
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut pairs = level.chunks_exact(2);
        for p in pairs.by_ref() {
            next.push(p[0] + p[1]);
        }
        next.extend_from_slice(pairs.remainder());
        level = next;
    }
    level[0]
}

/// One group's finished tree-fold input: per-chunk leaf sums in chunk
/// order plus the total value count. Chunks holding no value for the
/// group contribute no leaf, so the leaf list — and hence the tree shape
/// — is identical however the chunks were distributed over workers.
#[derive(Debug, Clone, Default)]
pub(crate) struct FoldState {
    leaves: Vec<f64>,
    count: u64,
}

impl FoldState {
    /// Non-null values folded in (across all leaves).
    pub(crate) fn count(&self) -> u64 {
        self.count
    }

    /// Append a later-in-row-order state (the morsel-order merge).
    pub(crate) fn append(&mut self, other: FoldState) {
        if self.leaves.is_empty() {
            self.leaves = other.leaves;
        } else {
            self.leaves.extend(other.leaves);
        }
        self.count += other.count;
    }

    /// Tree-combine the leaves (caller checks `count() > 0`).
    pub(crate) fn into_sum(self) -> f64 {
        tree_combine(self.leaves)
    }
}

/// Streaming builder of one group's [`FoldState`]: values arrive in row
/// order tagged with their fold-chunk id, and a chunk-id change closes
/// the current leaf. Within a leaf the i-th value lands in lane `i % 8`,
/// matching [`leaf_sum`] bit for bit.
#[derive(Debug, Clone, Default)]
pub(crate) struct FoldAcc {
    lanes: [f64; FOLD_LANES],
    lane_n: usize,
    cur_chunk: usize,
    state: FoldState,
}

impl FoldAcc {
    pub(crate) fn new() -> FoldAcc {
        FoldAcc::default()
    }

    /// Fold in the next value of this group; `chunk` ids must arrive in
    /// non-decreasing order (row order guarantees it).
    pub(crate) fn push(&mut self, chunk: usize, x: f64) {
        if self.lane_n > 0 && chunk != self.cur_chunk {
            self.close_leaf();
        }
        self.cur_chunk = chunk;
        self.lanes[self.lane_n % FOLD_LANES] += x;
        self.lane_n += 1;
        self.state.count += 1;
    }

    /// Append a whole leaf computed externally (the dense contiguous
    /// kernel path); must not interleave with streamed values of an open
    /// leaf.
    pub(crate) fn push_leaf(&mut self, sum: f64, count: u64) {
        debug_assert_eq!(self.lane_n, 0, "push_leaf while a streamed leaf is open");
        self.state.leaves.push(sum);
        self.state.count += count;
    }

    fn close_leaf(&mut self) {
        self.state.leaves.push(combine_lanes(&self.lanes));
        self.lanes = [0.0; FOLD_LANES];
        self.lane_n = 0;
    }

    pub(crate) fn finish(mut self) -> FoldState {
        if self.lane_n > 0 {
            self.close_leaf();
        }
        self.state
    }
}

/// Tree-sum of `(fold-chunk id, value)` pairs in row order (non-empty).
pub(crate) fn tree_sum(pairs: &[(usize, f64)]) -> f64 {
    let mut acc = FoldAcc::new();
    for &(chunk, x) in pairs {
        acc.push(chunk, x);
    }
    acc.finish().into_sum()
}

/// Sample standard deviation through the fixed-shape tree (n−1
/// denominator; NULL below two values): mean = tree-sum / n, then M2 =
/// tree-sum of (x − mean)² over the same chunk grid. Shared by both
/// engines and by the parallel second pass.
pub(crate) fn stddev_tree(pairs: &[(usize, f64)]) -> Value {
    if pairs.len() < 2 {
        return Value::Null;
    }
    let n = pairs.len() as f64;
    let mean = tree_sum(pairs) / n;
    let mut m2 = FoldAcc::new();
    for &(chunk, x) in pairs {
        m2.push(chunk, (x - mean).powi(2));
    }
    Value::Float((m2.finish().into_sum() / (n - 1.0)).sqrt())
}

/// The post-aggregation relation in column-major form, as the columnar
/// hash-aggregate naturally produces it: per-group key values plus one
/// value vector *per aggregate*. The grouped tail in [`crate::vexec`]
/// consumes it through [`GroupedRows::into_rows`], which transposes into
/// the row engine's `[key values..., aggregate values...]` layout by
/// **moving** every aggregate value — the previous tail cloned each one
/// (including `MIN`/`MAX` strings) a second time.
pub(crate) struct GroupedRows {
    /// Per group, the group-key values (first-appearance order).
    keys: Vec<Row>,
    /// Per aggregate, the per-group finalized values (`aggs[a][g]`).
    aggs: Vec<Vec<Value>>,
}

impl GroupedRows {
    pub(crate) fn new(keys: Vec<Row>, aggs: Vec<Vec<Value>>) -> GroupedRows {
        debug_assert!(aggs.iter().all(|a| a.len() == keys.len()));
        GroupedRows { keys, aggs }
    }

    /// Number of groups.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Transpose into post-group rows `[key values..., aggregate
    /// values...]` in group order, moving every value.
    pub(crate) fn into_rows(self) -> impl Iterator<Item = Row> {
        let mut agg_iters: Vec<_> = self.aggs.into_iter().map(Vec::into_iter).collect();
        self.keys.into_iter().map(move |mut row| {
            for it in &mut agg_iters {
                row.push(it.next().expect("one value per group per aggregate"));
            }
            row
        })
    }
}

/// Per-morsel partial state of one aggregate, over morsel-local group
/// ids. The parallel grouped operator in [`crate::vexec`] computes one of
/// these per (morsel, aggregate) on the worker pool, then merges them
/// **in morsel order** on the coordinating thread; [`AggPartial::merge`]
/// is written so that the merged state is exactly what a sequential pass
/// over the whole selection would have built:
///
/// - counts add (integers, order-free);
/// - distinct key sets union (order-free);
/// - `MIN`/`MAX` keep the earlier morsel's value on `total_cmp` ties,
///   reproducing first-occurrence-wins;
/// - `SUM`/`AVG` (and the `STDDEV` mean pass) carry per-fold-chunk leaf
///   sums ([`FoldState`]): the fold grid is cut by absolute position
///   (never by morsel boundary) and scheduling morsels cover whole
///   chunks, so concatenating leaves in morsel order rebuilds exactly
///   the sequential pass's leaf list, and the single fixed-shape
///   [`tree_combine`] happens at [`AggPartial::finalize`];
/// - `MEDIAN` partials carry per-morsel **sorted runs**, merged by the
///   loser tree at finalize — `f64::total_cmp` is a total order over bit
///   patterns, so the merged sequence is bit-identical to sorting the
///   row-order concatenation.
#[derive(Debug)]
pub(crate) enum AggPartial {
    /// `COUNT(*)` / `COUNT(expr)`: per-group non-null counts.
    Counts(Vec<i64>),
    /// `COUNT(DISTINCT expr)`: per-group value-key sets.
    Distinct(Vec<HashSet<ValueKey>>),
    /// `SUM`/`AVG`/`STDDEV` (mean pass): per-group tree-fold leaves.
    Sums(Vec<FoldState>),
    /// `MEDIAN`: per-group sorted runs (one per merged morsel).
    Runs(Vec<Vec<Vec<f64>>>),
    /// `MIN`/`MAX` over a **single-typed** column: per-group best-so-far
    /// (`Value::Null` = no value yet). Sound only because the typed
    /// comparisons (`i64`, `f64::total_cmp`, strings, bools) are total
    /// orders, where a first-wins fold of per-morsel folds equals the
    /// sequential left fold.
    Best(Vec<Value>),
    /// `MIN`/`MAX` over a `Mixed` column: per-group argument values in
    /// row order. `Value::total_cmp` is *not transitive* across physical
    /// types (Int-vs-Int compares exact `i64`, Int-vs-Float coerces
    /// through `f64`, so `2^53` f64-ties `2^53 + 1` but `i64`-beats it),
    /// so per-morsel winners cannot be merged — [`AggPartial::finalize`]
    /// replays the sequential left fold over the concatenation instead.
    BestValues(Vec<Vec<Value>>),
}

impl AggPartial {
    /// Empty global accumulator for `ngroups` merged groups.
    /// `mixed_best` selects the value-collecting `MIN`/`MAX` shape and
    /// must match what the morsel workers produced (i.e. whether the
    /// argument column is `Mixed`).
    pub(crate) fn new_global(func: AggFunc, ngroups: usize, mixed_best: bool) -> AggPartial {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggPartial::Counts(vec![0; ngroups]),
            AggFunc::CountDistinct => AggPartial::Distinct(vec![HashSet::new(); ngroups]),
            AggFunc::Sum | AggFunc::Avg | AggFunc::Stddev => {
                AggPartial::Sums(vec![FoldState::default(); ngroups])
            }
            AggFunc::Median => AggPartial::Runs(vec![Vec::new(); ngroups]),
            AggFunc::Min | AggFunc::Max if mixed_best => {
                AggPartial::BestValues(vec![Vec::new(); ngroups])
            }
            AggFunc::Min | AggFunc::Max => AggPartial::Best(vec![Value::Null; ngroups]),
        }
    }

    /// Fold one morsel's local partial into this global accumulator.
    /// `gid_map[local_gid]` is the merged global group id. Must be called
    /// in morsel order (earlier morsels first) — that is what preserves
    /// row-order value concatenation and first-occurrence tie-breaking.
    pub(crate) fn merge(&mut self, local: AggPartial, gid_map: &[u32], func: AggFunc) {
        match (self, local) {
            (AggPartial::Counts(global), AggPartial::Counts(local)) => {
                for (g, n) in local.into_iter().enumerate() {
                    global[gid_map[g] as usize] += n;
                }
            }
            (AggPartial::Distinct(global), AggPartial::Distinct(local)) => {
                for (g, set) in local.into_iter().enumerate() {
                    let dst = &mut global[gid_map[g] as usize];
                    if dst.is_empty() {
                        *dst = set;
                    } else {
                        dst.extend(set);
                    }
                }
            }
            (AggPartial::Sums(global), AggPartial::Sums(local)) => {
                for (g, state) in local.into_iter().enumerate() {
                    global[gid_map[g] as usize].append(state);
                }
            }
            (AggPartial::Runs(global), AggPartial::Runs(local)) => {
                for (g, runs) in local.into_iter().enumerate() {
                    let dst = &mut global[gid_map[g] as usize];
                    if dst.is_empty() {
                        *dst = runs;
                    } else {
                        dst.extend(runs);
                    }
                }
            }
            (AggPartial::BestValues(global), AggPartial::BestValues(local)) => {
                for (g, vals) in local.into_iter().enumerate() {
                    let dst = &mut global[gid_map[g] as usize];
                    if dst.is_empty() {
                        *dst = vals;
                    } else {
                        dst.extend(vals);
                    }
                }
            }
            (AggPartial::Best(global), AggPartial::Best(local)) => {
                let min = func == AggFunc::Min;
                for (g, v) in local.into_iter().enumerate() {
                    if v.is_null() {
                        continue;
                    }
                    let dst = &mut global[gid_map[g] as usize];
                    let adopt = dst.is_null()
                        || match v.total_cmp(dst) {
                            std::cmp::Ordering::Less => min,
                            std::cmp::Ordering::Greater => !min,
                            std::cmp::Ordering::Equal => false,
                        };
                    if adopt {
                        *dst = v;
                    }
                }
            }
            _ => unreachable!("mismatched aggregate partial variants"),
        }
    }

    /// Turn the merged state into per-group output values — the same
    /// values (bit for bit) the sequential single-pass operator produces.
    pub(crate) fn finalize(self, func: AggFunc) -> Vec<Value> {
        match self {
            AggPartial::Counts(counts) => counts.into_iter().map(Value::Int).collect(),
            AggPartial::Distinct(sets) => sets
                .into_iter()
                .map(|s| Value::Int(s.len() as i64))
                .collect(),
            AggPartial::Sums(per) => per
                .into_iter()
                .map(|state| match func {
                    _ if state.count() == 0 => Value::Null,
                    // The one fixed-shape tree fold over the merged
                    // (sequential-order) leaf list.
                    AggFunc::Sum => Value::Float(state.into_sum()),
                    AggFunc::Avg => {
                        let n = state.count() as f64;
                        Value::Float(state.into_sum() / n)
                    }
                    // STDDEV needs a second (M2) pass with the merged
                    // means in hand; `vexec::parallel_stddev` finalizes
                    // it from this mean-pass state.
                    _ => unreachable!("Sums partial finalized for {func:?}"),
                })
                .collect(),
            // Loser-tree merge of the morsel-order sorted runs: ties
            // break toward the earlier run, and `total_cmp`-equal floats
            // share a bit pattern, so this is the sorted concatenation.
            AggPartial::Runs(per) => per
                .into_iter()
                .map(|runs| {
                    median_of_sorted(&morsel::merge_sorted_runs(runs, None, |a, b| {
                        a.total_cmp(b)
                    }))
                })
                .collect(),
            AggPartial::Best(best) => best,
            // Replay the sequential Mixed-column fold exactly: values are
            // in row order, first occurrence wins `total_cmp` ties, and
            // the non-transitive cross-type comparisons happen in the
            // same left-to-right sequence the single-pass engine uses.
            AggPartial::BestValues(per) => {
                let min = func == AggFunc::Min;
                per.into_iter()
                    .map(|vals| {
                        let mut best: Option<Value> = None;
                        for v in vals {
                            best = Some(match best {
                                None => v,
                                Some(cur) => {
                                    let adopt = match v.total_cmp(&cur) {
                                        std::cmp::Ordering::Less => min,
                                        std::cmp::Ordering::Greater => !min,
                                        std::cmp::Ordering::Equal => false,
                                    };
                                    if adopt {
                                        v
                                    } else {
                                        cur
                                    }
                                }
                            });
                        }
                        best.unwrap_or(Value::Null)
                    })
                    .collect()
            }
        }
    }
}

/// Median of the collected non-null numeric arguments (NULL when empty,
/// average of the middle two for even counts). Shared by both execution
/// engines so grouped results are bit-identical.
pub(crate) fn median_of(mut nums: Vec<f64>) -> Value {
    nums.sort_by(f64::total_cmp);
    median_of_sorted(&nums)
}

/// Median of an already-`total_cmp`-sorted sequence — the parallel
/// path's entry point after the loser-tree run merge.
pub(crate) fn median_of_sorted(nums: &[f64]) -> Value {
    if nums.is_empty() {
        return Value::Null;
    }
    let n = nums.len();
    let m = if n % 2 == 1 {
        nums[n / 2]
    } else {
        (nums[n / 2 - 1] + nums[n / 2]) / 2.0
    };
    Value::Float(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col0() -> Option<CompiledExpr> {
        Some(CompiledExpr::Column(0))
    }

    fn rows(vals: &[Value]) -> Vec<Vec<Value>> {
        vals.iter().map(|v| vec![v.clone()]).collect()
    }

    fn compute(func: AggFunc, vals: &[Value]) -> Value {
        let spec = AggSpec {
            func,
            arg: if func == AggFunc::CountStar {
                None
            } else {
                col0()
            },
        };
        let owned = rows(vals);
        let refs: Vec<&[Value]> = owned.iter().map(|r| r.as_slice()).collect();
        let positions: Vec<usize> = (0..refs.len()).collect();
        spec.compute(&refs, &positions, morsel::DEFAULT_MORSEL_ROWS)
            .unwrap()
    }

    #[test]
    fn count_star_counts_all_rows() {
        assert_eq!(
            compute(AggFunc::CountStar, &[Value::Null, Value::Int(1)]),
            Value::Int(2)
        );
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            compute(AggFunc::Count, &[Value::Null, Value::Int(1), Value::Int(2)]),
            Value::Int(2)
        );
    }

    #[test]
    fn count_distinct() {
        assert_eq!(
            compute(
                AggFunc::CountDistinct,
                &[Value::Int(1), Value::Int(1), Value::Int(2), Value::Null]
            ),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_avg_empty_is_null() {
        assert_eq!(compute(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(compute(AggFunc::Avg, &[Value::Null]), Value::Null);
    }

    #[test]
    fn sum_and_avg() {
        let vals = [Value::Int(1), Value::Int(2), Value::Float(3.0)];
        assert_eq!(compute(AggFunc::Sum, &vals), Value::Float(6.0));
        assert_eq!(compute(AggFunc::Avg, &vals), Value::Float(2.0));
    }

    #[test]
    fn min_max_mixed_with_nulls() {
        let vals = [Value::Int(3), Value::Null, Value::Int(1), Value::Int(2)];
        assert_eq!(compute(AggFunc::Min, &vals), Value::Int(1));
        assert_eq!(compute(AggFunc::Max, &vals), Value::Int(3));
    }

    #[test]
    fn min_max_on_strings() {
        let vals = [Value::str("b"), Value::str("a"), Value::str("c")];
        assert_eq!(compute(AggFunc::Min, &vals), Value::str("a"));
        assert_eq!(compute(AggFunc::Max, &vals), Value::str("c"));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(
            compute(
                AggFunc::Median,
                &[Value::Int(3), Value::Int(1), Value::Int(2)]
            ),
            Value::Float(2.0)
        );
        assert_eq!(
            compute(
                AggFunc::Median,
                &[Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)]
            ),
            Value::Float(2.5)
        );
    }

    #[test]
    fn stddev_sample() {
        // stddev of {2, 4, 4, 4, 5, 5, 7, 9} with n-1 denominator ≈ 2.138
        let vals: Vec<Value> = [2, 4, 4, 4, 5, 5, 7, 9]
            .iter()
            .map(|&v| Value::Int(v))
            .collect();
        let Value::Float(s) = compute(AggFunc::Stddev, &vals) else {
            panic!("expected float");
        };
        assert!((s - 2.13809).abs() < 1e-4);
        assert_eq!(compute(AggFunc::Stddev, &[Value::Int(1)]), Value::Null);
    }

    #[test]
    fn parse_resolves_names() {
        assert_eq!(
            AggFunc::parse("count", false, true),
            Some(AggFunc::CountStar)
        );
        assert_eq!(
            AggFunc::parse("count", true, false),
            Some(AggFunc::CountDistinct)
        );
        assert_eq!(AggFunc::parse("sum", false, false), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("lower", false, false), None);
    }

    #[test]
    fn sum_rejects_strings() {
        let spec = AggSpec {
            func: AggFunc::Sum,
            arg: col0(),
        };
        let owned = rows(&[Value::str("x")]);
        let refs: Vec<&[Value]> = owned.iter().map(|r| r.as_slice()).collect();
        assert!(spec.compute(&refs, &[0], 4096).is_err());
    }

    // ---- reduction-tree shape & kernel equivalence -----------------------

    /// Leaves whose bit patterns expose the association: 1e16 absorbs a
    /// lone 1.0 (1e16 + 1.0 == 1e16) but not a pre-added pair of them,
    /// so any deviation from the pinned tree shape changes the result.
    fn shape_leaves(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| if i % 2 == 0 { 1e16 } else { 1.0 })
            .collect()
    }

    #[test]
    fn tree_combine_shape_is_pinned_per_leaf_count() {
        // 1 leaf: identity.
        assert_eq!(tree_combine(vec![3.5]).to_bits(), 3.5f64.to_bits());
        // 2 leaves: l0 + l1.
        let l = shape_leaves(2);
        assert_eq!(tree_combine(l.clone()).to_bits(), (l[0] + l[1]).to_bits());
        // 3 leaves: (l0 + l1) + l2 — the odd tail carries up unchanged.
        let l = shape_leaves(3);
        assert_eq!(
            tree_combine(l.clone()).to_bits(),
            ((l[0] + l[1]) + l[2]).to_bits()
        );
        // 5 leaves: ((l0+l1) + (l2+l3)) + l4 — the tail survives two
        // levels before joining.
        let l = shape_leaves(5);
        assert_eq!(
            tree_combine(l.clone()).to_bits(),
            (((l[0] + l[1]) + (l[2] + l[3])) + l[4]).to_bits()
        );
    }

    /// For a power-of-two leaf count the adjacent-pairwise bottom-up
    /// reduction must equal the perfectly balanced recursive split — an
    /// independent formulation of the same tree.
    #[test]
    fn tree_combine_4096_leaves_is_balanced_binary() {
        fn balanced(l: &[f64]) -> f64 {
            if l.len() == 1 {
                return l[0];
            }
            let (a, b) = l.split_at(l.len() / 2);
            balanced(a) + balanced(b)
        }
        let leaves = shape_leaves(4096);
        assert_eq!(
            tree_combine(leaves.clone()).to_bits(),
            balanced(&leaves).to_bits()
        );
    }

    /// The tree is a pure function of the leaf list: re-splitting the
    /// leaves across "morsels" (FoldState::append order) never changes
    /// the combined bits.
    #[test]
    fn fold_state_append_is_split_invariant() {
        let pairs: Vec<(usize, f64)> = (0..100)
            .map(|i| (i / 3, if i % 2 == 0 { 1e16 } else { 1.0 }))
            .collect();
        let whole = {
            let mut acc = FoldAcc::new();
            for &(c, x) in &pairs {
                acc.push(c, x);
            }
            acc.finish().into_sum().to_bits()
        };
        for split in [3, 9, 33, 99] {
            // Splits at chunk boundaries (multiples of 3 positions).
            let mut global = FoldState::default();
            for part in pairs.chunks(split) {
                let mut acc = FoldAcc::new();
                for &(c, x) in part {
                    acc.push(c, x);
                }
                global.append(acc.finish());
            }
            assert_eq!(global.into_sum().to_bits(), whole, "split={split}");
        }
    }

    /// The dense SIMD leaf kernel and the streaming lane accumulator
    /// are the same function, bit for bit — including NaN and -0.0.
    #[test]
    fn leaf_kernels_match_streaming_lanes() {
        let vals: Vec<f64> = (0..37)
            .map(|i| match i % 5 {
                0 => 1e16,
                1 => -0.0,
                2 => f64::NAN,
                3 => (i as f64) * 0.1,
                _ => 2f64.powi(53),
            })
            .collect();
        let mut acc = FoldAcc::new();
        for &x in &vals {
            acc.push(0, x);
        }
        let streamed = acc.finish().into_sum();
        assert_eq!(streamed.to_bits(), leaf_sum(&vals).to_bits());

        let ints: Vec<i64> = (0..37).map(|i| (1i64 << 53) + i).collect();
        let as_floats: Vec<f64> = ints.iter().map(|&x| x as f64).collect();
        assert_eq!(
            leaf_sum_ints(&ints).to_bits(),
            leaf_sum(&as_floats).to_bits()
        );
    }
}
