//! Minimal CSV import/export for tables — the "bring your own data" path
//! for using FLEX against real datasets without writing loader code.
//!
//! The dialect is RFC-4180-ish: comma separator, `"` quoting with `""`
//! escapes, first record is the header. Values are parsed per the target
//! schema; empty unquoted fields load as NULL.

use crate::error::{DbError, Result};
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Parse CSV text into a table with the given name and schema. The header
/// must match the schema's column names (order included).
pub fn table_from_csv(name: &str, schema: Schema, csv: &str) -> Result<Table> {
    let mut records = parse_records(csv)?;
    if records.is_empty() {
        return Err(DbError::Parse("CSV input has no header".to_string()));
    }
    let header = records.remove(0);
    let expected: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
    let got: Vec<&str> = header.iter().map(|(f, _)| f.as_str()).collect();
    if got != expected {
        return Err(DbError::Parse(format!(
            "CSV header {got:?} does not match schema columns {expected:?}"
        )));
    }

    let mut table = Table::new(name, schema);
    for (line_no, record) in records.into_iter().enumerate() {
        if record.len() != table.schema.len() {
            return Err(DbError::ArityMismatch {
                expected: table.schema.len(),
                found: record.len(),
            });
        }
        let mut row = Vec::with_capacity(record.len());
        for ((field, quoted), col) in record.into_iter().zip(&table.schema.columns) {
            row.push(
                parse_value(&field, quoted, col.data_type)
                    .map_err(|e| DbError::Parse(format!("CSV record {}: {e}", line_no + 2)))?,
            );
        }
        table.insert(row)?;
    }
    Ok(table)
}

/// Render a table back to CSV (header included).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema
        .columns
        .iter()
        .map(|c| quote(&c.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &table.rows {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => quote(s),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.is_empty() {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split CSV text into records of `(field, was_quoted)` pairs.
fn parse_records(csv: &str) -> Result<Vec<Vec<(String, bool)>>> {
    let mut records = Vec::new();
    let mut record: Vec<(String, bool)> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = csv.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() => {
                in_quotes = true;
                quoted = true;
            }
            ',' => {
                record.push((std::mem::take(&mut field), quoted));
                quoted = false;
            }
            '\r' => {}
            '\n' => {
                record.push((std::mem::take(&mut field), quoted));
                quoted = false;
                // Skip blank lines.
                if !(record.len() == 1 && record[0].0.is_empty() && !record[0].1) {
                    records.push(std::mem::take(&mut record));
                } else {
                    record.clear();
                }
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(DbError::Parse("unterminated quoted CSV field".to_string()));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push((field, quoted));
        records.push(record);
    }
    Ok(records)
}

fn parse_value(field: &str, quoted: bool, ty: DataType) -> Result<Value> {
    if field.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    let err = |what: &str| DbError::TypeMismatch {
        context: format!("CSV field `{field}`"),
        expected: what.to_string(),
        found: "text".to_string(),
    };
    match ty {
        DataType::Str => Ok(Value::Str(field.to_string())),
        DataType::Int => field
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err("integer")),
        DataType::Float => field
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err("float")),
        DataType::Bool => match field.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "f" | "0" | "no" => Ok(Value::Bool(false)),
            _ => Err(err("boolean")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Str),
            ("fare", DataType::Float),
            ("done", DataType::Bool),
        ])
    }

    #[test]
    fn roundtrip_with_quotes_nulls_and_newlines() {
        let mut t = Table::new("t", schema());
        t.insert(vec![
            Value::Int(1),
            Value::str("plain"),
            Value::Float(2.5),
            Value::Bool(true),
        ])
        .unwrap();
        t.insert(vec![
            Value::Int(2),
            Value::str("has,comma and \"quote\"\nand newline"),
            Value::Null,
            Value::Bool(false),
        ])
        .unwrap();
        let csv = table_to_csv(&t);
        let back = table_from_csv("t", schema(), &csv).unwrap();
        assert_eq!(back.rows, t.rows);
    }

    #[test]
    fn parses_basic_csv() {
        let csv = "id,name,fare,done\n1,alice,10.5,true\n2,bob,,false\n";
        let t = table_from_csv("t", schema(), csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows[0][1], Value::str("alice"));
        assert!(t.rows[1][2].is_null());
        assert_eq!(t.rows[1][3], Value::Bool(false));
    }

    #[test]
    fn quoted_empty_string_is_not_null() {
        let csv = "id,name,fare,done\n1,\"\",1.0,t\n";
        let t = table_from_csv("t", schema(), csv).unwrap();
        assert_eq!(t.rows[0][1], Value::str(""));
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "id,nom,fare,done\n";
        assert!(matches!(
            table_from_csv("t", schema(), csv),
            Err(DbError::Parse(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "id,name,fare,done\n1,alice\n";
        assert!(matches!(
            table_from_csv("t", schema(), csv),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn bad_numbers_rejected_with_line_info() {
        let csv = "id,name,fare,done\nxyz,alice,1.0,t\n";
        let err = table_from_csv("t", schema(), csv).unwrap_err();
        assert!(err.to_string().contains("record 2"), "{err}");
    }

    #[test]
    fn unterminated_quote_rejected() {
        let csv = "id,name,fare,done\n1,\"oops,1.0,t\n";
        assert!(table_from_csv("t", schema(), csv).is_err());
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let csv = "id,name,fare,done\r\n\r\n1,a,1.0,t\r\n";
        let t = table_from_csv("t", schema(), csv).unwrap();
        assert_eq!(t.len(), 1);
    }
}
