//! Morsel-driven parallel scheduling for the vectorized engine.
//!
//! A *morsel* is a contiguous slice of rows (or selection-vector
//! entries). Parallel operators split their input into morsels, a scoped
//! worker pool ([`std::thread::scope`] — no runtime dependency, threads
//! never outlive the query) claims morsels from a shared atomic cursor,
//! and the per-morsel results are **merged in morsel order**. Two sizes
//! govern a morsel run, and only one of them may touch result bits:
//!
//! - `Parallelism::fold_rows` fixes the aggregate reduction grid (the
//!   leaf width of the fixed-shape fold tree in [`crate::aggregate`]).
//!   It is part of the numeric contract and never derived from the
//!   worker count.
//! - `Parallelism::sched_rows` — the actual morsel size — is autotuned
//!   from input cardinality and worker count, always a whole multiple of
//!   `fold_rows`. It is pure scheduling: morsel-order merging makes the
//!   combined output (concatenations, loser-tree run merges, group
//!   first-appearance order, fold-tree leaf lists, and which error is
//!   reported — the first in row order) independent of how the input was
//!   cut.
//!
//! The DP layers above can therefore never observe the worker count.
//!
//! With one effective worker (or a single morsel) `run` degrades to a
//! plain sequential loop on the calling thread — no threads, no atomics —
//! which is what makes `parallelism = 1` byte-for-byte the sequential
//! engine.

use std::cmp::Ordering as CmpOrdering;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default rows per fold chunk — the reduction-grid granularity (see
/// [`crate::aggregate`]): `SUM`/`AVG`/`STDDEV` leaves cover this many
/// selection positions, so the value is part of the engine's *numeric
/// contract* (changing it changes result bit patterns) and is bound into
/// the service's noise-seed fingerprint. 4096 keeps each leaf inside the
/// L1 cache while amortizing the per-leaf tree bookkeeping.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// How many scheduling morsels [`Parallelism::sched_rows`] aims to hand
/// each worker: enough slack that an unlucky worker can't serialize the
/// tail, few enough that per-morsel merge cost stays negligible.
const MORSELS_PER_WORKER: usize = 4;

/// Execution-tuning knobs threaded through the vectorized operators.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Parallelism {
    /// Worker threads an operator may use (1 = sequential).
    pub workers: usize,
    /// Reduction-grid chunk size: the aggregate fold tree's leaf width
    /// (tests shrink it to exercise multi-leaf merging on tiny tables).
    /// Determinism-bearing — results change bits if this changes — so it
    /// must never be derived from the worker count.
    pub fold_rows: usize,
}

impl Parallelism {
    /// Should `len` input rows be processed in parallel at all?
    pub fn engaged(&self, len: usize) -> bool {
        self.workers > 1 && len > self.fold_rows
    }

    /// Rows per *scheduling* morsel for a `len`-row input: a whole
    /// multiple of [`Parallelism::fold_rows`] (so one reduction leaf is
    /// never split across two workers) autotuned from the input
    /// cardinality and worker count to target ~[`MORSELS_PER_WORKER`]
    /// morsels per worker. Scheduling granularity is pure tuning: every
    /// parallel operator merges per-morsel results in morsel order and
    /// aggregates fold on the absolute-position chunk grid, so this
    /// value — unlike `fold_rows` — can chase the worker count freely
    /// without moving a single result bit.
    pub fn sched_rows(&self, len: usize) -> usize {
        let fold = self.fold_rows.max(1);
        let leaves = len.div_ceil(fold).max(1);
        let target = (self.workers.max(1) * MORSELS_PER_WORKER).max(1);
        leaves.div_ceil(target).max(1) * fold
    }
}

/// Split `len` items into morsel index ranges of `morsel_rows` each.
fn morsel_ranges(len: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    (0..len.div_ceil(step))
        .map(|m| m * step..((m + 1) * step).min(len))
        .collect()
}

/// Run `f` over every morsel of `0..len` and return the per-morsel
/// results **in morsel order**, using up to `par.workers` scoped threads.
///
/// `f` must be a pure function of its range (it sees shared read-only
/// state only), so the result is independent of which worker claims which
/// morsel. Worker panics propagate to the caller with their original
/// payload, exactly like a panic in a sequential loop would.
pub(crate) fn run<T, F>(len: usize, par: Parallelism, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = morsel_ranges(len, par.sched_rows(len));
    let workers = par.workers.min(ranges.len());
    if workers <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let ranges = &ranges;
                let f = &f;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = ranges.get(m) else { break };
                        out.push((m, f(range.clone())));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(results) => {
                    for (m, t) in results {
                        slots[m] = Some(t);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every morsel was claimed exactly once"))
        .collect()
}

/// Fallible variant of [`run`]: each morsel yields a `Result`, and the
/// merged outcome is either every `Ok` payload in morsel order or the
/// error of the **earliest** failing morsel — the same error a sequential
/// left-to-right pass reports first (later morsels may have run, but
/// morsel workers are side-effect free, so that is unobservable).
pub(crate) fn try_run<T, E, F>(len: usize, par: Parallelism, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    run(len, par, f).into_iter().collect()
}

// ---- loser-tree merge of sorted morsel runs ------------------------------

/// Does run `a`'s head beat (come before) run `b`'s head? Exhausted runs
/// (and the padding leaves above `runs.len()`) always lose; on `cmp`
/// equality the lower run index wins, which — because runs are per-morsel
/// and morsels partition the input in order — reproduces a stable
/// sequential sort's tie order.
fn run_beats<T>(
    runs: &[Vec<T>],
    pos: &[usize],
    cmp: &impl Fn(&T, &T) -> CmpOrdering,
    a: usize,
    b: usize,
) -> bool {
    let head = |i: usize| {
        if i < runs.len() {
            runs[i].get(pos[i])
        } else {
            None
        }
    };
    match (head(a), head(b)) {
        (None, _) => false,
        (Some(_), None) => true,
        (Some(x), Some(y)) => match cmp(x, y) {
            CmpOrdering::Less => true,
            CmpOrdering::Greater => false,
            CmpOrdering::Equal => a < b,
        },
    }
}

/// Play out the initial tournament below `node`: internal nodes record
/// the *loser* run of their match, the winner propagates up. Leaves are
/// `p..2p` and map to run ids `0..p` (ids `>= runs.len()` are permanent
/// padding losers).
fn play_initial<B: Fn(usize, usize) -> bool>(
    node: usize,
    p: usize,
    tree: &mut [usize],
    beats: &B,
) -> usize {
    if node >= p {
        return node - p;
    }
    let l = play_initial(node * 2, p, tree, beats);
    let r = play_initial(node * 2 + 1, p, tree, beats);
    let (winner, loser) = if beats(l, r) { (l, r) } else { (r, l) };
    tree[node] = loser;
    winner
}

/// Merge pre-sorted runs into one sorted output via a **loser tree**
/// (tournament tree): each pop costs one leaf-to-root replay of
/// `log2(runs)` comparisons, instead of a full rescan of every run head.
/// Runs must each be sorted under `cmp`; ties across runs break toward
/// the lower run index, so merging per-morsel stable sorts reproduces the
/// sequential stable sort of the concatenated input — bit for bit, which
/// is what keeps the parallel ORDER BY byte-identical to the row engine.
/// `take` bounds the output length (for top-K merges); `None` drains
/// every run.
pub(crate) fn merge_sorted_runs<T: Copy>(
    runs: Vec<Vec<T>>,
    take: Option<usize>,
    cmp: impl Fn(&T, &T) -> CmpOrdering,
) -> Vec<T> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let want = take.map_or(total, |t| t.min(total));
    if want == 0 {
        return Vec::new();
    }
    if runs.len() == 1 {
        let mut run = runs.into_iter().next().expect("one run");
        run.truncate(want);
        return run;
    }
    let p = runs.len().next_power_of_two();
    let mut pos = vec![0usize; runs.len()];
    let mut tree = vec![usize::MAX; p];
    let mut winner = {
        let beats = |a: usize, b: usize| run_beats(&runs, &pos, &cmp, a, b);
        play_initial(1, p, &mut tree, &beats)
    };
    let mut out = Vec::with_capacity(want);
    while out.len() < want {
        out.push(runs[winner][pos[winner]]);
        pos[winner] += 1;
        // Replay the matches on the path from this run's leaf to the
        // root; the previous losers stored along it are exactly the
        // candidates the new head must face.
        let mut node = (p + winner) / 2;
        let mut cur = winner;
        while node >= 1 {
            let challenger = tree[node];
            if !run_beats(&runs, &pos, &cmp, cur, challenger) {
                tree[node] = cur;
                cur = challenger;
            }
            node /= 2;
        }
        winner = cur;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par(workers: usize, fold_rows: usize) -> Parallelism {
        Parallelism { workers, fold_rows }
    }

    #[test]
    fn sched_rows_is_fold_aligned_and_tracks_workers() {
        // Always a whole multiple of fold_rows, never below it.
        for (workers, fold, len) in [(1, 7, 1000), (4, 3, 100), (8, 4096, 10_000_000), (2, 1, 5)] {
            let p = par(workers, fold);
            let sched = p.sched_rows(len);
            assert_eq!(sched % fold, 0, "workers={workers} fold={fold} len={len}");
            assert!(sched >= fold);
        }
        // ~4 morsels per worker once the input is large enough.
        let p = par(4, 4096);
        let len = 10_000_000usize;
        let morsels = len.div_ceil(p.sched_rows(len));
        assert!((13..=16).contains(&morsels), "got {morsels} morsels");
        // Small inputs degrade to one-leaf morsels, not zero.
        assert_eq!(par(4, 4096).sched_rows(100), 4096);
        assert_eq!(par(4, 10).sched_rows(0), 10);
    }

    #[test]
    fn ranges_cover_input_exactly() {
        assert_eq!(morsel_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(morsel_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(morsel_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(morsel_ranges(3, 4), vec![0..3]);
    }

    #[test]
    fn parallel_results_arrive_in_morsel_order() {
        for workers in [1, 2, 3, 8] {
            let got = run(1000, par(workers, 7), |r| r.clone());
            let flat: Vec<usize> = got.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn try_run_reports_earliest_morsel_error() {
        // Morsels 3 and 7 fail; the merged error must be morsel 3's.
        let r: Result<Vec<()>, usize> = try_run(100, par(4, 10), |range| {
            let m = range.start / 10;
            if m == 3 || m == 7 {
                Err(m)
            } else {
                Ok(())
            }
        });
        assert_eq!(r.unwrap_err(), 3);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run(100, par(4, 10), |range| {
                if range.start == 50 {
                    panic!("boom at 50");
                }
                range.len()
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn loser_tree_merge_equals_global_stable_sort() {
        // Deterministic pseudo-random keys with many duplicates. Items
        // are (key, global_index); runs are chunk-local stable sorts by
        // key, so the merge must reproduce the global stable sort — ties
        // in input order — for every chunking and run count.
        let keys: Vec<u32> = (0..500u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % 7)
            .collect();
        let items: Vec<(u32, u32)> = keys.iter().copied().zip(0..).collect();
        let mut expect = items.clone();
        expect.sort_by_key(|&(k, _)| k); // stable
        for chunk in [1usize, 3, 7, 64, 500, 900] {
            let runs: Vec<Vec<(u32, u32)>> = items
                .chunks(chunk)
                .map(|c| {
                    let mut run = c.to_vec();
                    run.sort_by_key(|&(k, _)| k);
                    run
                })
                .collect();
            let merged = merge_sorted_runs(runs, None, |a, b| a.0.cmp(&b.0));
            assert_eq!(merged, expect, "chunk={chunk}");
        }
    }

    #[test]
    fn loser_tree_take_bounds_output() {
        let runs = vec![vec![1, 4, 7], vec![2, 3, 9], vec![], vec![0, 8]];
        assert_eq!(
            merge_sorted_runs(runs.clone(), Some(4), i32::cmp),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            merge_sorted_runs(runs.clone(), None, i32::cmp),
            vec![0, 1, 2, 3, 4, 7, 8, 9]
        );
        assert_eq!(
            merge_sorted_runs(runs.clone(), Some(100), i32::cmp),
            vec![0, 1, 2, 3, 4, 7, 8, 9]
        );
        assert_eq!(
            merge_sorted_runs(runs, Some(0), i32::cmp),
            Vec::<i32>::new()
        );
        assert_eq!(
            merge_sorted_runs(Vec::<Vec<i32>>::new(), None, i32::cmp),
            Vec::<i32>::new()
        );
        // A single run short-circuits (no tree built).
        assert_eq!(
            merge_sorted_runs(vec![vec![5, 6, 7]], Some(2), i32::cmp),
            vec![5, 6]
        );
    }

    #[test]
    fn single_worker_never_spawns() {
        // Runs on the calling thread: thread-local state proves it.
        thread_local! {
            static MARK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        MARK.with(|m| m.set(7));
        let got = run(100, par(1, 10), |_| MARK.with(|m| m.get()));
        assert!(got.iter().all(|&v| v == 7));
    }
}
