//! Morsel-driven parallel scheduling for the vectorized engine.
//!
//! A *morsel* is a fixed-size slice of rows (or selection-vector entries).
//! Parallel operators split their input into morsels, a scoped worker
//! pool ([`std::thread::scope`] — no runtime dependency, threads never
//! outlive the query) claims morsels from a shared atomic cursor, and the
//! per-morsel results are **merged in morsel order**. That merge order is
//! the whole determinism story: whatever the scheduling, the combined
//! output is exactly what a sequential left-to-right pass would have
//! produced, so floats accumulate in the same order, first-appearance
//! group ids match, and the first error (in row order) is the error
//! reported. The DP layers above can never observe the worker count.
//!
//! With one effective worker (or a single morsel) `run` degrades to a
//! plain sequential loop on the calling thread — no threads, no atomics —
//! which is what makes `parallelism = 1` byte-for-byte the sequential
//! engine.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default rows per morsel. Small enough that a 100k-row scan yields
/// ~24 morsels (good load balance at 4–8 workers), large enough that the
/// per-morsel scheduling cost disappears into the scan itself.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Execution-tuning knobs threaded through the vectorized operators.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Parallelism {
    /// Worker threads an operator may use (1 = sequential).
    pub workers: usize,
    /// Rows per morsel (tests shrink this to exercise merging on tiny
    /// tables).
    pub morsel_rows: usize,
}

impl Parallelism {
    /// Should `len` input rows be processed in parallel at all?
    pub fn engaged(&self, len: usize) -> bool {
        self.workers > 1 && len > self.morsel_rows
    }
}

/// Split `len` items into morsel index ranges of `morsel_rows` each.
fn morsel_ranges(len: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    (0..len.div_ceil(step))
        .map(|m| m * step..((m + 1) * step).min(len))
        .collect()
}

/// Run `f` over every morsel of `0..len` and return the per-morsel
/// results **in morsel order**, using up to `par.workers` scoped threads.
///
/// `f` must be a pure function of its range (it sees shared read-only
/// state only), so the result is independent of which worker claims which
/// morsel. Worker panics propagate to the caller with their original
/// payload, exactly like a panic in a sequential loop would.
pub(crate) fn run<T, F>(len: usize, par: Parallelism, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = morsel_ranges(len, par.morsel_rows);
    let workers = par.workers.min(ranges.len());
    if workers <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let ranges = &ranges;
                let f = &f;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = ranges.get(m) else { break };
                        out.push((m, f(range.clone())));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(results) => {
                    for (m, t) in results {
                        slots[m] = Some(t);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every morsel was claimed exactly once"))
        .collect()
}

/// Fallible variant of [`run`]: each morsel yields a `Result`, and the
/// merged outcome is either every `Ok` payload in morsel order or the
/// error of the **earliest** failing morsel — the same error a sequential
/// left-to-right pass reports first (later morsels may have run, but
/// morsel workers are side-effect free, so that is unobservable).
pub(crate) fn try_run<T, E, F>(len: usize, par: Parallelism, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(Range<usize>) -> Result<T, E> + Sync,
{
    run(len, par, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par(workers: usize, morsel_rows: usize) -> Parallelism {
        Parallelism {
            workers,
            morsel_rows,
        }
    }

    #[test]
    fn ranges_cover_input_exactly() {
        assert_eq!(morsel_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(morsel_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(morsel_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(morsel_ranges(3, 4), vec![0..3]);
    }

    #[test]
    fn parallel_results_arrive_in_morsel_order() {
        for workers in [1, 2, 3, 8] {
            let got = run(1000, par(workers, 7), |r| r.clone());
            let flat: Vec<usize> = got.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn try_run_reports_earliest_morsel_error() {
        // Morsels 3 and 7 fail; the merged error must be morsel 3's.
        let r: Result<Vec<()>, usize> = try_run(100, par(4, 10), |range| {
            let m = range.start / 10;
            if m == 3 || m == 7 {
                Err(m)
            } else {
                Ok(())
            }
        });
        assert_eq!(r.unwrap_err(), 3);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run(100, par(4, 10), |range| {
                if range.start == 50 {
                    panic!("boom at 50");
                }
                range.len()
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn single_worker_never_spawns() {
        // Runs on the calling thread: thread-local state proves it.
        thread_local! {
            static MARK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        MARK.with(|m| m.set(7));
        let got = run(100, par(1, 10), |_| MARK.with(|m| m.get()));
        assert!(got.iter().all(|&v| v == 7));
    }
}
