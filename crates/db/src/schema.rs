//! Table schemas.

use crate::error::{DbError, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Column data types. Values are dynamically typed at runtime; the declared
/// type is checked on insert and drives the value-range metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (also admits `Int` values on insert).
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Does `v` conform to this type (`NULL` conforms to every type)?
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DataType::Bool, Value::Bool(_))
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_))
                | (DataType::Float, Value::Int(_))
                | (DataType::Str, Value::Str(_))
        )
    }

    /// Human-readable type name, as used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Bool => "boolean",
            DataType::Int => "integer",
            DataType::Float => "float",
            DataType::Str => "string",
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
}

impl ColumnDef {
    /// A column definition.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The column definitions, in table order.
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    /// A schema from pre-built column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Build a schema from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema {
            columns: cols.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a row against this schema.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.columns.len(),
                found: row.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.data_type.admits(v) {
                return Err(DbError::TypeMismatch {
                    context: format!("column `{}`", col.name),
                    expected: col.data_type.name().to_string(),
                    found: v.type_name().to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_nulls_everywhere() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
        ] {
            assert!(t.admits(&Value::Null));
        }
    }

    #[test]
    fn float_admits_int() {
        assert!(DataType::Float.admits(&Value::Int(3)));
        assert!(!DataType::Int.admits(&Value::Float(3.0)));
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]);
        assert!(s.check_row(&[Value::Int(1), Value::str("x")]).is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::str("x"), Value::str("y")]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn index_of_finds_columns() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
    }
}
