//! Vectorized (columnar, batch-at-a-time) execution engine.
//!
//! Instead of interpreting one `Vec<Value>` row at a time, this engine
//! scans the table's lazily built [`ColumnarTable`] projection: WHERE
//! predicates run as **comparison kernels** over whole typed column
//! vectors, narrowing a *selection vector* of surviving row indices, and
//! GROUP BY / aggregate blocks run as a **columnar hash-aggregate** that
//! assigns group ids from key columns and accumulates each aggregate in a
//! single pass — no intermediate row materialization at all on the hot
//! COUNT/SUM/AVG shapes that dominate the Uber and TPC-H workloads.
//!
//! # Routing contract
//!
//! [`try_execute`] accepts a query iff the planner in [`crate::plan`]
//! can express it over the physical plan IR — every operator producing
//! and consuming a [`ColumnarTable`]:
//!
//! - a single SELECT block over **one base table**;
//! - a SELECT block over a **derived table** (`FROM (SELECT …) alias`):
//!   the subquery executes first (routed independently) and its result
//!   columnarizes into the block's scan;
//! - a SELECT block over a **join tree** of up to eight base/derived
//!   leaves (`plan::plan_tree`): INNER/LEFT/RIGHT/FULL equi-joins run
//!   as columnar hash joins (matched-bit tracking pads the kept sides),
//!   CROSS and non-equi joins as nested-loop morsels, each join
//!   late-materializing only live columns into the next operator's
//!   input;
//! - **UNION / UNION ALL** trees whose arms are themselves routable
//!   SELECT blocks with statically known output shapes: arms execute
//!   left-to-right, concatenate columnar, and the existing DISTINCT
//!   machinery dedupes at each distinct node.
//!
//! What remains on the row interpreter ([`crate::exec`]): CTEs,
//! INTERSECT/EXCEPT, table-less SELECT, unknown tables, join trees
//! deeper than eight leaves, and shapes whose planning hits a
//! scope/compile error the row engine re-derives and reports
//! identically — each with its concrete [`FallbackReason`].
//! Within an accepted query, sub-shapes the columnar operators don't
//! cover degrade gracefully rather than bailing out:
//!
//! - WHERE predicates containing any conjunct without a kernel (e.g.
//!   arbitrary CASE or arithmetic) are evaluated whole by the shared
//!   scalar interpreter over scratch rows gathered from only the
//!   referenced columns, preserving short-circuit and error semantics;
//! - grouped queries whose group keys or aggregate arguments are not
//!   plain columns fall back to gathering the filtered rows and running
//!   the row engine's grouping code on them (keeping the filter win);
//! - the ORDER BY / DISTINCT / LIMIT tail runs fully columnar when the
//!   projection and sort keys are plain columns (`plan::plan_tail`):
//!   indices sort by typed column keys, `ORDER BY … LIMIT k` runs as a
//!   bounded top-K heap, DISTINCT dedupes typed keys, and only the
//!   surviving rows late-materialize (`run_tail`); computed projections
//!   and expression sort keys run the **speculative mixed tail**
//!   (`run_tail_mixed`): every expression evaluates for every
//!   post-WHERE row in the row engine's per-row order (so the first
//!   error matches exactly), then indices sort/dedupe/slice as usual;
//!   shapes the tail planner declines reuse the row engine's tail over
//!   gathered rows instead.
//!
//! # Morsel-driven parallelism
//!
//! When [`Database::set_parallelism`] raises the per-query worker budget
//! above 1, the filter pass, the per-side join scans, the hash-join
//! probe (against a shared read-only build side), row gathering, the
//! ORDER BY sort (morsel-local sorts or top-K selections merged by the
//! loser tree in [`crate::morsel`]), tail late materialization and
//! grouped aggregation all run across a scoped worker pool in morsels
//! whose size is autotuned from cardinality and worker count
//! ([`crate::morsel`]). Every parallel operator merges its per-morsel
//! results **in morsel order**: selection vectors and match vectors
//! concatenate, sorted runs merge with a lower-run-wins tie-break (= the
//! sequential stable sort), per-morsel group tables map into the global
//! first-appearance order, and aggregate partial states (`AggPartial` in
//! [`crate::aggregate`]) merge under order-preserving rules. Numeric
//! aggregates (`SUM`/`AVG`/`STDDEV`) fold through a **fixed-shape
//! reduction tree**: each morsel folds its fold-grid chunks into leaf
//! sums locally (the 8-lane SIMD kernel), the merged leaf lists
//! concatenate in morsel order, and one pairwise tree combine produces
//! the result — the tree's shape depends only on the data layout and the
//! reduction grid, never on worker count or scheduling. `MEDIAN` sorts
//! per-morsel runs on the workers and loser-tree-merges them. Execution
//! is therefore byte-identical at every worker count — including *which*
//! runtime error surfaces — and `parallelism = 1` evaluates exactly the
//! same functions sequentially.
//!
//! **Result identity:** both engines compile expressions with the same
//! compiler, fold floating-point aggregates through the same fixed-shape
//! reduction tree over the same fold grid (the row engine hands
//! `AggSpec::compute` the identical selection positions), and resolve
//! ORDER BY keys through one shared rule, and the columnar
//! tail reproduces the row engine's stable sort / first-occurrence
//! DISTINCT / LIMIT slice exactly (index tie-breaks stand in for sort
//! stability — see `run_tail`), so any query that executes without
//! error returns a byte-identical [`ResultSet`] on either engine — the
//! DP layers above (sensitivity analysis, noise seeding) cannot observe
//! which engine ran, nor how many threads ran it. The one permitted divergence: *aggregate-stage* type errors (e.g.
//! `SUM` over a column mixing strings into numbers) may be reported from
//! a different row, because the columnar accumulators visit rows in
//! table order rather than group order; whether a query errors is still
//! identical.

use crate::aggregate::{self, AggFunc, AggPartial, AggSpec, FoldAcc, FoldState, GroupedRows};
use crate::column::{Column, ColumnData, ColumnarTable, GATHER_NULL};
use crate::database::Database;
use crate::error::{DbError, Result};
use crate::exec::{self, Exec, GroupCompiler, SortKey};
use crate::expr::{like_match, CompiledExpr};
use crate::morsel::{self, Parallelism};
use crate::plan::{
    self, ColMeta, FallbackReason, JoinNode, JoinOrder, JoinSide, LeafSource, PlanNode, Relation,
    ResultSet, RouteDecision, TailItem, TailPlan, TreePlan,
};
use crate::table::{Row, Table};
use crate::value::{BorrowKey, RowKey, Value, ValueKey};
use flex_sql::{
    BinaryOperator, JoinType, Query, Select, SelectItem, SetExpr, SetOperator, TableRef,
};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A planned vectorized execution of one query.
enum Route<'a> {
    /// Single-table scan/filter/aggregate block.
    Single {
        s: &'a Select,
        table: &'a Table,
        qualifier: &'a str,
    },
    /// Single derived-table block: the subquery executes first (routed
    /// independently) and its result columnarizes into this block's
    /// scan.
    SingleDerived {
        s: &'a Select,
        query: &'a Query,
        alias: &'a str,
    },
    /// Join-tree pipeline over base/derived leaves ([`TreePlan`]).
    Tree(Box<TreeRoute<'a>>),
    /// UNION / UNION ALL tree of routable SELECT arms.
    Union(Box<UnionRoute<'a>>),
}

struct TreeRoute<'a> {
    s: &'a Select,
    plan: TreePlan<'a>,
}

struct UnionRoute<'a> {
    /// Leaf SELECT arms in depth-first (row-engine execution) order.
    arms: Vec<&'a Select>,
    /// Output width shared by every arm.
    arity: usize,
    /// ORDER BY keys resolved to output column positions (UNION output
    /// only sorts by its own columns, exactly like the row engine).
    sort: Vec<(usize, bool)>,
}

/// Decide whether (and how) the vectorized engine runs `q`. `Err` names
/// the concrete reason the row interpreter handles it — including shapes
/// where planning hits a scope error the row engine will re-derive and
/// report identically.
fn route<'a>(db: &'a Database, q: &'a Query) -> std::result::Result<Route<'a>, FallbackReason> {
    if !q.ctes.is_empty() {
        return Err(FallbackReason::Cte);
    }
    let s = match &q.body {
        SetExpr::Select(s) => s,
        SetExpr::SetOp { .. } => return plan_union(db, q).map(Route::Union),
    };
    match s.from.as_ref().ok_or(FallbackReason::TableLess)? {
        TableRef::Table { name, alias } => {
            // Unknown tables fall back so the row engine reports the error.
            let table = db.table(name).ok_or(FallbackReason::UnknownTable)?;
            Ok(Route::Single {
                s,
                table,
                qualifier: alias.as_deref().unwrap_or(name),
            })
        }
        TableRef::Derived { query, alias } => Ok(Route::SingleDerived { s, query, alias }),
        from @ TableRef::Join { .. } => {
            let mut ex = Exec::new(db);
            let tree = plan::plan_tree(&mut ex, db, q, s, from)?;
            Ok(Route::Tree(Box::new(TreeRoute { s, plan: tree })))
        }
    }
}

/// Plan a set-operation body. Only UNION / UNION ALL trees whose arms
/// are statically analyzable SELECT blocks vectorize; INTERSECT/EXCEPT,
/// arity mismatches, unresolvable ORDER BY keys, and unroutable arms
/// all report [`FallbackReason::SetOperation`] unless an arm declines
/// with its own more specific reason.
fn plan_union<'a>(
    db: &'a Database,
    q: &'a Query,
) -> std::result::Result<Box<UnionRoute<'a>>, FallbackReason> {
    let mut arms = Vec::new();
    collect_union_arms(&q.body, &mut arms)?;
    // Output shape: every arm must have statically known names, and all
    // arities must agree (the row engine checks arity at runtime; here
    // statically-equal arity guarantees the runtime check passes).
    let mut names: Option<Vec<String>> = None;
    for s in &arms {
        let arm_names = plan::static_out_names(db, s).ok_or(FallbackReason::SetOperation)?;
        match &names {
            None => names = Some(arm_names),
            Some(first) if first.len() != arm_names.len() => {
                return Err(FallbackReason::SetOperation)
            }
            Some(_) => {}
        }
    }
    let names = names.expect("a set-op body has at least two arms");
    // Every arm must itself route; an arm's concrete reason propagates.
    for s in &arms {
        route(db, &arm_query(s))?;
    }
    // ORDER BY over the union resolves against the first arm's output
    // names only (positional or bare-name keys — the row engine's
    // `sort_by_output_columns` rule); anything else falls back and the
    // row engine re-derives the same resolution failure as an error.
    let mut sort = Vec::with_capacity(q.order_by.len());
    if !q.order_by.is_empty() {
        let out_cols: Vec<ColMeta> = names
            .iter()
            .map(|n| ColMeta::new(None, n.clone()))
            .collect();
        let keys = exec::plan_sort_keys_with(&q.order_by, &out_cols, &mut |_| {
            Err(DbError::Unsupported(
                "set-operation ORDER BY keys must name output columns".into(),
            ))
        })
        .map_err(|_| FallbackReason::SetOperation)?;
        for (key, item) in keys.into_iter().zip(&q.order_by) {
            match key {
                SortKey::Output(pos) => sort.push((pos, item.descending)),
                SortKey::Source(_) => unreachable!("source compiler always errors"),
            }
        }
    }
    Ok(Box::new(UnionRoute {
        arms,
        arity: names.len(),
        sort,
    }))
}

/// Flatten a set-op tree into its SELECT leaves, in depth-first order.
/// Any non-UNION operator rejects the whole tree.
fn collect_union_arms<'a>(
    e: &'a SetExpr,
    arms: &mut Vec<&'a Select>,
) -> std::result::Result<(), FallbackReason> {
    match e {
        SetExpr::Select(s) => {
            arms.push(s);
            Ok(())
        }
        SetExpr::SetOp {
            op: SetOperator::Union,
            left,
            right,
            ..
        } => {
            collect_union_arms(left, arms)?;
            collect_union_arms(right, arms)
        }
        SetExpr::SetOp { .. } => Err(FallbackReason::SetOperation),
    }
}

/// Wrap one union arm as a standalone query (no ORDER BY / LIMIT —
/// those apply to the union's output, not the arms), so it can route
/// and execute through the ordinary block pipeline.
fn arm_query(s: &Select) -> Query {
    Query::from_select(s.clone())
}

/// Execution statistics the vectorized engine reports about one run —
/// the observability payload of [`crate::exec::ExecTrace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct VexecStats {
    /// Whether the `ORDER BY … LIMIT` tail ran as a bounded top-K
    /// selection instead of a full sort.
    pub topk: bool,
    /// Scan morsels the input split into (both sides, for a join).
    pub morsels: u64,
    /// Worker threads the execution was entitled to use (1 when the
    /// input was too small to engage the morsel pool).
    pub workers: u64,
    /// Base-table rows scanned (both sides, for a join).
    pub rows_scanned: u64,
    /// Join order the tree executor chose (pure scheduling — never
    /// affects result bytes; see [`JoinOrder`]).
    pub join_order: JoinOrder,
}

/// Scheduling-morsel count for `len` input rows under tuning `par`
/// (the autotuned [`Parallelism::sched_rows`] granularity).
fn morsel_count(len: usize, par: Parallelism) -> u64 {
    if len == 0 {
        return 0;
    }
    len.div_ceil(par.sched_rows(len)) as u64
}

/// Execute `q` on the vectorized engine if it is vectorizable, else
/// `None` (the caller falls back to the row interpreter).
pub fn try_execute(db: &Database, q: &Query) -> Option<Result<ResultSet>> {
    try_execute_traced(db, q).ok().map(|(result, _)| result)
}

/// Like [`try_execute`], but report execution statistics alongside the
/// result, or the concrete [`FallbackReason`] when declining — the
/// pipeline's own record, surfaced through [`crate::exec::ExecTrace`].
pub(crate) fn try_execute_traced(
    db: &Database,
    q: &Query,
) -> std::result::Result<(Result<ResultSet>, VexecStats), FallbackReason> {
    let routed = route(db, q)?;
    let par = db.exec_tuning();
    let mut stats = VexecStats::default();
    let result = match routed {
        Route::Single {
            s,
            table,
            qualifier,
        } => {
            let len = table.len();
            stats.rows_scanned = len as u64;
            stats.morsels = morsel_count(len, par);
            stats.workers = if par.engaged(len) { par.workers } else { 1 } as u64;
            let ctab = table.columnar().clone();
            run_block(db, q, s, table.col_metas(qualifier), &ctab, &mut stats.topk)
        }
        Route::SingleDerived { s, query, alias } => run_derived(db, q, s, query, alias, &mut stats),
        Route::Tree(t) => run_tree(db, q, t.s, t.plan, &mut stats),
        Route::Union(u) => run_union(db, q, &u, &mut stats),
    };
    Ok((result, stats))
}

/// Whether [`try_execute`] would accept `q` — i.e. whether
/// [`crate::exec::execute`] routes it to the columnar engine. Exposed so
/// callers (e.g. service telemetry) can observe fast-path coverage
/// without executing anything.
pub fn accepts(db: &Database, q: &Query) -> bool {
    route(db, q).is_ok()
}

/// The routing decision for `q`, without executing anything: costs one
/// planning pass. [`crate::exec::execute_traced`] reports the same
/// decision from the execution itself at zero extra cost.
pub fn decide(db: &Database, q: &Query) -> RouteDecision {
    match route(db, q) {
        Ok(_) => RouteDecision::Vectorized,
        Err(reason) => RouteDecision::Fallback(reason),
    }
}

/// One SELECT block over an already-columnar input: WHERE → selection
/// vector, then the shared [`finish_block`] tail. The scan behind
/// `ctab` can be a base table, a columnarized derived-table result, or
/// a join-tree output.
fn run_block(
    db: &Database,
    q: &Query,
    s: &Select,
    cols: Vec<ColMeta>,
    ctab: &ColumnarTable,
    topk: &mut bool,
) -> Result<ResultSet> {
    let par = db.exec_tuning();
    let mut ex = Exec::new(db);

    // WHERE → selection vector.
    let all: Vec<u32> = (0..ctab.len() as u32).collect();
    let sel = match &s.selection {
        Some(pred) => {
            let compiled = ex.compile_scalar(pred, &cols)?;
            filter(ctab, &compiled, all, par)?
        }
        None => all,
    };
    finish_block(&mut ex, q, s, cols, ctab, &sel, par, topk)
}

/// A SELECT block whose FROM is a derived table: execute the subquery
/// first (it routes independently — vectorized when it can), then
/// columnarize its rows into this block's scan. Matches the row
/// engine's order of operations (subquery before WHERE compilation), so
/// errors surface identically.
fn run_derived(
    db: &Database,
    q: &Query,
    s: &Select,
    query: &Query,
    alias: &str,
    stats: &mut VexecStats,
) -> Result<ResultSet> {
    let rs = exec::execute(db, query)?;
    let width = rs.columns.len();
    let ctab = ColumnarTable::from_rows(&rs.rows, width);
    let cols: Vec<ColMeta> = rs
        .columns
        .iter()
        .map(|n| ColMeta::new(Some(alias.to_string()), n.clone()))
        .collect();
    let par = db.exec_tuning();
    let len = ctab.len();
    stats.rows_scanned = len as u64;
    stats.morsels = morsel_count(len, par);
    stats.workers = if par.engaged(len) { par.workers } else { 1 } as u64;
    run_block(db, q, s, cols, &ctab, &mut stats.topk)
}

/// Everything downstream of the scan/filter/join. Three tails, tried in
/// order:
///
/// 1. aggregated blocks run the columnar hash-aggregate plus the grouped
///    tail (top-K over group indices when `ORDER BY … LIMIT` allows);
/// 2. plain blocks whose projection and sort keys are all plain columns
///    run the fully-columnar tail ([`run_tail`]): sort/dedupe/slice the
///    selection vector itself, then late-materialize only the survivors;
/// 3. plain blocks with computed projections or expression sort keys
///    run the speculative mixed tail ([`run_tail_mixed`]);
/// 4. anything else gathers the filtered rows and reuses the row
///    engine's projection/sort/DISTINCT tail verbatim (which also
///    re-derives any compile error, identically).
///
/// Shared by the single-table, derived-table, and join-tree pipelines.
#[allow(clippy::too_many_arguments)]
fn finish_block(
    ex: &mut Exec<'_>,
    q: &Query,
    s: &Select,
    cols: Vec<ColMeta>,
    ctab: &ColumnarTable,
    sel: &[u32],
    par: Parallelism,
    topk: &mut bool,
) -> Result<ResultSet> {
    if Exec::has_aggregates(s) {
        if let Some(result) = grouped_fast(ex, q, s, &cols, ctab, sel, par, topk) {
            // LIMIT/OFFSET already applied by the grouped tail.
            return result.map(ResultSet::from);
        }
    } else if let Some(tail) = plan::plan_tail(ex, q, s, &cols) {
        // Columnar tail: LIMIT/OFFSET applied on indices inside.
        if tail.computed.is_empty() {
            return Ok(ResultSet::from(run_tail(ctab, sel, &tail, par, topk)));
        }
        return run_tail_mixed(ctab, sel, &tail, par, topk).map(ResultSet::from);
    }
    // Row-engine tail over only the surviving rows (grouping fallback for
    // non-column group keys/aggregate args, computed projections, or
    // expression sort keys).
    let input = Relation::new(cols, gather_rows(ctab, sel, par));
    let mut rel = ex.select_after_where(s, input, &q.order_by)?;
    exec::apply_limit_offset(&mut rel, q.limit, q.offset);
    Ok(ResultSet::from(rel))
}

/// Materialize the selected rows (exact `Value` reconstruction). Morsels
/// gather independently; concatenating them in morsel order reproduces
/// the sequential row order exactly.
fn gather_rows(ctab: &ColumnarTable, sel: &[u32], par: Parallelism) -> Vec<Row> {
    if par.engaged(sel.len()) {
        // flatten() moves the worker-built rows; `concat()` would clone
        // every Row a second time on the coordinating thread.
        return morsel::run(sel.len(), par, |r| {
            sel[r]
                .iter()
                .map(|&i| ctab.row(i as usize))
                .collect::<Vec<Row>>()
        })
        .into_iter()
        .flatten()
        .collect();
    }
    sel.iter().map(|&i| ctab.row(i as usize)).collect()
}

// ---- fully-columnar ORDER BY / DISTINCT / LIMIT tail ----------------------

/// Run a planned fully-columnar tail over the selection vector:
///
/// 1. **Sort** the *indices* by typed columnar sort keys
///    ([`Column::row_ordering`] — no `Value` materialization, no key
///    rows). `ORDER BY … LIMIT k` with no DISTINCT runs as a bounded
///    **top-K heap** ([`exec::top_k_sorted`]) so only `offset + k`
///    indices are ever held. With parallelism engaged, morsels sort (or
///    top-K-select) locally and a loser tree merges the runs
///    ([`morsel::merge_sorted_runs`]).
/// 2. **DISTINCT** dedupes the surviving indices over typed column keys
///    ([`distinct_key`] — [`BorrowKey`]s that partition values exactly
///    like the `ValueKey`s the row engine hashes, without cloning),
///    keeping first occurrences in the current order and stopping early
///    once `offset + limit` rows are kept.
/// 3. **LIMIT/OFFSET** slice the index vector.
/// 4. Only then are the survivors **late-materialized**, gathering just
///    the projected columns (morsel-parallel, stitched in order).
///
/// Every step is infallible (plain column reads only — that is
/// [`plan::plan_tail`]'s eligibility rule), so skipping non-surviving
/// rows can never skip an error the row engine would report.
///
/// # Byte-identity with the row engine
///
/// The row engine stable-sorts whole rows by evaluated key values
/// (`Value::total_cmp` per key). Here the comparator chains the same
/// per-column orderings and then breaks ties by row index — selection
/// vectors are strictly increasing, so index order *is* the row engine's
/// stable-sort tie order, and a total order with no inter-row ties makes
/// unstable sorts, bounded heaps and run merges all produce that same
/// permutation. DISTINCT hashes keys that partition rows exactly as
/// `RowKey::from_values` over the projected row would.
fn run_tail(
    ctab: &ColumnarTable,
    sel: &[u32],
    tail: &TailPlan,
    par: Parallelism,
    topk_hit: &mut bool,
) -> Relation {
    // Pure-column tail: every item is `TailItem::Source` (the
    // `computed.is_empty()` dispatch in `finish_block` guarantees it).
    let source = |item: TailItem| match item {
        TailItem::Source(c) => c,
        TailItem::Computed(_) => unreachable!("pure tail has no computed items"),
    };
    let srcs: Vec<usize> = tail.out_items.iter().map(|&i| source(i)).collect();
    let sort: Vec<(usize, bool)> = tail
        .sort
        .iter()
        .map(|&(item, desc)| (source(item), desc))
        .collect();
    let bound = if tail.distinct {
        None
    } else {
        exec::tail_bound(tail.limit, tail.offset)
    };

    // 1. Order the surviving indices.
    let mut idx: Vec<u32> = if sort.is_empty() {
        match bound {
            // No sort, no DISTINCT: the tail is a pure slice — take it
            // before materializing anything.
            Some(k) => sel[..k.min(sel.len())].to_vec(),
            None => sel.to_vec(),
        }
    } else {
        ordered_indices(ctab, &sort, sel, bound, par, topk_hit)
    };

    // 2. DISTINCT over typed column keys, first occurrence wins.
    if tail.distinct {
        let target = exec::tail_bound(tail.limit, tail.offset);
        let mut seen: HashSet<Vec<BorrowKey<'_>>> = HashSet::new();
        let mut kept = Vec::new();
        for &i in &idx {
            if seen.insert(distinct_key(ctab, &srcs, i as usize)) {
                kept.push(i);
                // Infallible tail: stopping at the bound is unobservable.
                if target.is_some_and(|t| kept.len() >= t) {
                    break;
                }
            }
        }
        idx = kept;
    }

    // 3. LIMIT/OFFSET on the index vector. (Paths bounded above already
    // hold at most `offset + limit` indices, where this is cheap.)
    if let Some(off) = tail.offset {
        idx.drain(..(off as usize).min(idx.len()));
    }
    if let Some(lim) = tail.limit {
        idx.truncate(lim as usize);
    }

    // 4. Late materialization of only the projected columns.
    let rows = materialize_rows(ctab, &idx, &srcs, par);
    Relation::new(tail.out_cols.clone(), rows)
}

/// The speculative **mixed tail**: a plain block whose projection or
/// sort keys include computed expressions. Every computed expression is
/// evaluated up front for *every* post-WHERE row, in the row engine's
/// per-row order — projection items left to right, then ORDER BY source
/// expressions — so the first error (earliest row, earliest expression)
/// is exactly the one the row engine reports. After that the tail is
/// infallible and proceeds like [`run_tail`]: indices sort (computed
/// keys compare their pre-evaluated values, source keys their typed
/// columns, ties break on position = the row engine's stable order),
/// DISTINCT dedupes first occurrences, LIMIT/OFFSET slice, and only the
/// survivors materialize.
fn run_tail_mixed(
    ctab: &ColumnarTable,
    sel: &[u32],
    tail: &TailPlan,
    par: Parallelism,
    topk_hit: &mut bool,
) -> Result<Relation> {
    let n = sel.len();
    // 1. Speculative evaluation, column-major: `vals[k][p]` is computed
    // expression `k` at selection position `p`. Scratch rows gather only
    // the referenced columns.
    let mut refs = Vec::new();
    for e in &tail.computed {
        e.for_each_column(&mut |i| refs.push(i));
    }
    refs.sort_unstable();
    refs.dedup();
    let eval_chunk = |r: std::ops::Range<usize>| -> Result<Vec<Vec<Value>>> {
        let mut scratch: Row = vec![Value::Null; ctab.columns.len()];
        let mut out: Vec<Vec<Value>> = tail
            .computed
            .iter()
            .map(|_| Vec::with_capacity(r.len()))
            .collect();
        for &i in &sel[r] {
            let idx = i as usize;
            for &c in &refs {
                scratch[c] = ctab.columns[c].value(idx);
            }
            for (e, vals) in tail.computed.iter().zip(&mut out) {
                vals.push(e.eval(&scratch)?);
            }
        }
        Ok(out)
    };
    let vals: Vec<Vec<Value>> = if par.engaged(n) {
        // Earliest-morsel error wins = earliest-row error, sequentially
        // identical.
        let chunks = morsel::try_run(n, par, eval_chunk)?;
        let mut vals: Vec<Vec<Value>> = tail
            .computed
            .iter()
            .map(|_| Vec::with_capacity(n))
            .collect();
        for chunk in chunks {
            for (v, c) in vals.iter_mut().zip(chunk) {
                v.extend(c);
            }
        }
        vals
    } else {
        eval_chunk(0..n)?
    };

    // 2. Order selection *positions* (0..n) — positions index both `sel`
    // and `vals`; ascending position is ascending selection index, i.e.
    // the row engine's stable-sort tie order.
    let bound = if tail.distinct {
        None
    } else {
        exec::tail_bound(tail.limit, tail.offset)
    };
    let all_pos: Vec<u32> = (0..n as u32).collect();
    let mut pos = if tail.sort.is_empty() {
        match bound {
            Some(k) => all_pos[..k.min(n)].to_vec(),
            None => all_pos,
        }
    } else {
        type BoxedKey<'a> = (Box<dyn Fn(usize, usize) -> Ordering + Sync + 'a>, bool);
        let keys: Vec<BoxedKey<'_>> = tail
            .sort
            .iter()
            .map(|&(item, desc)| {
                let key: Box<dyn Fn(usize, usize) -> Ordering + Sync> = match item {
                    TailItem::Source(c) => {
                        let ord = ctab.columns[c].row_ordering();
                        Box::new(move |a: usize, b: usize| ord(sel[a] as usize, sel[b] as usize))
                    }
                    TailItem::Computed(k) => {
                        let vs = &vals[k];
                        Box::new(move |a: usize, b: usize| vs[a].total_cmp(&vs[b]))
                    }
                };
                (key, desc)
            })
            .collect();
        let cmp = move |a: &u32, b: &u32| {
            for (key, desc) in &keys {
                let ord = key(*a as usize, *b as usize);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b)
        };
        order_indices(&all_pos, bound, par, cmp, topk_hit)
    };

    // 3. DISTINCT over the projected output keys, first occurrence wins.
    if tail.distinct {
        let target = exec::tail_bound(tail.limit, tail.offset);
        let mut seen: HashSet<Vec<BorrowKey<'_>>> = HashSet::new();
        let mut kept = Vec::new();
        for &p in &pos {
            let key: Vec<BorrowKey<'_>> = tail
                .out_items
                .iter()
                .map(|&item| match item {
                    TailItem::Source(c) => {
                        borrow_key_at(&ctab.columns[c], sel[p as usize] as usize)
                    }
                    TailItem::Computed(k) => BorrowKey::from(&vals[k][p as usize]),
                })
                .collect();
            if seen.insert(key) {
                kept.push(p);
                if target.is_some_and(|t| kept.len() >= t) {
                    break;
                }
            }
        }
        pos = kept;
    }

    // 4. LIMIT/OFFSET on positions, then materialize the survivors.
    if let Some(off) = tail.offset {
        pos.drain(..(off as usize).min(pos.len()));
    }
    if let Some(lim) = tail.limit {
        pos.truncate(lim as usize);
    }
    let rows: Vec<Row> = pos
        .iter()
        .map(|&p| {
            tail.out_items
                .iter()
                .map(|&item| match item {
                    TailItem::Source(c) => ctab.columns[c].value(sel[p as usize] as usize),
                    TailItem::Computed(k) => vals[k][p as usize].clone(),
                })
                .collect()
        })
        .collect();
    Ok(Relation::new(tail.out_cols.clone(), rows))
}

/// Sort the selection indices by the tail's typed columnar sort keys —
/// bounded top-K when `bound` allows, morsel-parallel with a loser-tree
/// merge when engaged. Single-key sorts over a single-typed column get a
/// **monomorphized** comparator (the hot dashboard shape: the `f64`
/// comparison inlines into the sort loop); multi-key and `Mixed`-column
/// sorts chain the boxed per-column orderings.
fn ordered_indices(
    ctab: &ColumnarTable,
    sort: &[(usize, bool)],
    sel: &[u32],
    bound: Option<usize>,
    par: Parallelism,
    topk_hit: &mut bool,
) -> Vec<u32> {
    if let [(c, desc)] = *sort {
        let col = &ctab.columns[c];
        match &col.data {
            ColumnData::Int64(xs) => {
                return order_by_typed_key(
                    sel,
                    bound,
                    par,
                    desc,
                    topk_hit,
                    col,
                    |i| xs[i],
                    |a: &i64, b| a.cmp(b),
                );
            }
            ColumnData::Float64(xs) => {
                return order_by_typed_key(
                    sel,
                    bound,
                    par,
                    desc,
                    topk_hit,
                    col,
                    |i| xs[i],
                    |a: &f64, b| a.total_cmp(b),
                );
            }
            ColumnData::Str(ss) => {
                return order_by_typed_key(
                    sel,
                    bound,
                    par,
                    desc,
                    topk_hit,
                    col,
                    |i| ss[i].as_str(),
                    |a: &&str, b| a.cmp(b),
                );
            }
            ColumnData::Bool(bs) => {
                return order_by_typed_key(
                    sel,
                    bound,
                    par,
                    desc,
                    topk_hit,
                    col,
                    |i| bs[i],
                    |a: &bool, b| a.cmp(b),
                );
            }
            ColumnData::Mixed(_) => {}
        }
    }
    type BoxedKey<'a> = (Box<dyn Fn(usize, usize) -> Ordering + Sync + 'a>, bool);
    let keys: Vec<BoxedKey<'_>> = sort
        .iter()
        .map(|&(c, desc)| (ctab.columns[c].row_ordering(), desc))
        .collect();
    let cmp = move |a: &u32, b: &u32| {
        for (key, desc) in &keys {
            let ord = key(*a as usize, *b as usize);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.cmp(b)
    };
    order_indices(sel, bound, par, cmp, topk_hit)
}

/// Single-typed-key ordering via decorate–sort–undecorate: each morsel
/// splits its slice of the selection into NULL indices and `(key, row)`
/// pairs, sorts (or bounded-top-K-selects) the *pairs* — key comparisons
/// read sequentially-copied pair memory instead of chasing random column
/// indices, and the comparator is monomorphized per column type — then
/// the runs loser-tree-merge and NULLs splice back in at the position
/// `total_cmp` gives them (first ascending, last descending).
///
/// Order identity with the boxed comparator chain (and therefore the row
/// engine): NULLs tie with each other only, so among themselves they
/// keep index order — chunks collect them in selection order and
/// concatenate in morsel order, which is exactly that; pairs carry the
/// index tie-break in the comparator; and `desc` only reverses the key
/// order, never the tie-break.
#[allow(clippy::too_many_arguments)]
fn order_by_typed_key<T, G, F>(
    sel: &[u32],
    bound: Option<usize>,
    par: Parallelism,
    desc: bool,
    topk_hit: &mut bool,
    col: &Column,
    get: G,
    ord: F,
) -> Vec<u32>
where
    T: Copy + Send + Sync,
    G: Fn(usize) -> T + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let has_nulls = col.nulls.any();
    let pair_cmp = move |a: &(T, u32), b: &(T, u32)| {
        let o = ord(&a.0, &b.0);
        let o = if desc { o.reverse() } else { o };
        o.then(a.1.cmp(&b.1))
    };
    let topk = bound.is_some_and(|k| k < sel.len());
    if topk {
        *topk_hit = true;
    }
    let k = bound.unwrap_or(usize::MAX);
    // Under top-K, at most k NULL indices can survive the splice below,
    // and they are collected in selection order — capping the collection
    // (per morsel and merged) keeps the bounded tail's memory at
    // O(offset + k) even on a mostly-NULL key column, byte-identically.
    let null_cap = if topk { k } else { usize::MAX };
    let decorate = |r: std::ops::Range<usize>| -> (Vec<u32>, Vec<(T, u32)>) {
        let mut nulls = Vec::new();
        let mut pairs = Vec::with_capacity(r.len());
        for &i in &sel[r] {
            let idx = i as usize;
            if has_nulls && col.is_null(idx) {
                if nulls.len() < null_cap {
                    nulls.push(i);
                }
            } else {
                pairs.push((get(idx), i));
            }
        }
        (nulls, pairs)
    };
    let (nulls, pairs) = if par.engaged(sel.len()) {
        let chunks = morsel::run(sel.len(), par, |r| {
            let (nulls, mut pairs) = decorate(r);
            if topk {
                pairs = exec::top_k_sorted(pairs, k, &pair_cmp);
            } else {
                pairs.sort_unstable_by(&pair_cmp);
            }
            (nulls, pairs)
        });
        let mut nulls: Vec<u32> = Vec::new();
        let mut runs = Vec::with_capacity(chunks.len());
        for (n, p) in chunks {
            let room = null_cap - nulls.len();
            nulls.extend(n.into_iter().take(room));
            runs.push(p);
        }
        let take = topk.then_some(k);
        (nulls, morsel::merge_sorted_runs(runs, take, pair_cmp))
    } else {
        let (nulls, mut pairs) = decorate(0..sel.len());
        if topk {
            pairs = exec::top_k_sorted(pairs, k, &pair_cmp);
        } else {
            pairs.sort_unstable_by(&pair_cmp);
        }
        (nulls, pairs)
    };
    // Splice NULLs back: ascending order ranks them below every key
    // (first), descending reverses that (last). `k` bounds the total.
    let want = k.min(nulls.len() + pairs.len());
    let mut out = Vec::with_capacity(want);
    if desc {
        out.extend(pairs.into_iter().map(|p| p.1).take(want));
        let rest = want - out.len();
        out.extend(nulls.into_iter().take(rest));
    } else {
        out.extend(nulls.into_iter().take(want));
        let rest = want - out.len();
        out.extend(pairs.into_iter().map(|p| p.1).take(rest));
    }
    out
}

/// The shared ordering engine behind [`ordered_indices`], generic over
/// the comparator so typed fast paths stay monomorphized end to end
/// (heap, sort and merge included). `cmp` must be a total order with no
/// ties between distinct indices (every caller ends with the index
/// tie-break), which is what lets unstable sorts, bounded heaps and the
/// loser-tree merge all reproduce the row engine's stable sort exactly.
fn order_indices<C>(
    sel: &[u32],
    bound: Option<usize>,
    par: Parallelism,
    cmp: C,
    topk_hit: &mut bool,
) -> Vec<u32>
where
    C: Fn(&u32, &u32) -> Ordering + Sync,
{
    match bound {
        Some(k) if k < sel.len() => {
            *topk_hit = true;
            if par.engaged(sel.len()) {
                // Morsel-local top-K runs, loser-tree merged; any global
                // top-K index is in its morsel's top K.
                let runs = morsel::run(sel.len(), par, |r| {
                    exec::top_k_sorted(sel[r].iter().copied(), k, &cmp)
                });
                morsel::merge_sorted_runs(runs, Some(k), cmp)
            } else {
                exec::top_k_sorted(sel.iter().copied(), k, &cmp)
            }
        }
        _ => {
            if par.engaged(sel.len()) {
                let runs = morsel::run(sel.len(), par, |r| {
                    let mut run = sel[r].to_vec();
                    run.sort_unstable_by(&cmp);
                    run
                });
                morsel::merge_sorted_runs(runs, None, cmp)
            } else {
                let mut idx = sel.to_vec();
                idx.sort_unstable_by(cmp);
                idx
            }
        }
    }
}

/// The DISTINCT key of row `i` under a plain-column projection: the same
/// key sequence `RowKey::from_values` derives from the projected output
/// row — [`BorrowKey`] mirrors `ValueKey` exactly — but borrowing
/// strings straight from the columns, so keying a row never clones.
fn distinct_key<'a>(ctab: &'a ColumnarTable, srcs: &[usize], i: usize) -> Vec<BorrowKey<'a>> {
    srcs.iter()
        .map(|&c| borrow_key_at(&ctab.columns[c], i))
        .collect()
}

/// One column's contribution to a DISTINCT key: the [`BorrowKey`] of row
/// `i`, borrowing strings straight from the column.
fn borrow_key_at(col: &Column, i: usize) -> BorrowKey<'_> {
    if col.is_null(i) {
        return BorrowKey::Null;
    }
    match &col.data {
        ColumnData::Int64(xs) => BorrowKey::Int(xs[i]),
        ColumnData::Float64(xs) => BorrowKey::from_float(xs[i]),
        ColumnData::Bool(bs) => BorrowKey::Bool(bs[i]),
        ColumnData::Str(ss) => BorrowKey::Str(&ss[i]),
        ColumnData::Mixed(vs) => BorrowKey::from(&vs[i]),
    }
}

/// Materialize the tail's surviving rows, reading only the projected
/// source columns (in output order — a column projected twice is read
/// twice, like the row engine's projection). Morsels materialize
/// independently and stitch in order.
fn materialize_rows(
    ctab: &ColumnarTable,
    idx: &[u32],
    srcs: &[usize],
    par: Parallelism,
) -> Vec<Row> {
    let chunk = |r: std::ops::Range<usize>| -> Vec<Row> {
        idx[r]
            .iter()
            .map(|&i| {
                srcs.iter()
                    .map(|&c| ctab.columns[c].value(i as usize))
                    .collect()
            })
            .collect()
    };
    if par.engaged(idx.len()) {
        return morsel::run(idx.len(), par, chunk)
            .into_iter()
            .flatten()
            .collect();
    }
    chunk(0..idx.len())
}

// ---- columnar filtering -------------------------------------------------

/// Narrow `sel` to the rows where `pred` is TRUE (SQL filter semantics:
/// NULL drops).
///
/// When every top-level AND conjunct has a kernel, conjuncts narrow the
/// selection one at a time, so later conjuncts only touch surviving
/// rows. That reordering is only sound because kernels are infallible:
/// the row engine keeps evaluating later conjuncts on rows where an
/// earlier one was NULL (AND short-circuits on FALSE only), so skipping
/// those rows may skip a runtime *error* the row engine would report.
/// Any conjunct without a kernel therefore sends the whole predicate to
/// the scalar interpreter, which preserves short-circuit and error
/// behavior exactly.
///
/// With parallelism engaged the selection splits into morsels, each
/// morsel narrows independently (kernels and the scalar interpreter are
/// both per-row), and the surviving indices concatenate in morsel order —
/// the sequential output, bit for bit, including which error surfaces.
fn filter(
    ctab: &ColumnarTable,
    pred: &CompiledExpr,
    mut sel: Vec<u32>,
    par: Parallelism,
) -> Result<Vec<u32>> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    if !conjuncts.iter().all(|c| kernelizable(ctab, c)) {
        if par.engaged(sel.len()) {
            let chunks = morsel::try_run(sel.len(), par, |r| {
                generic_filter_chunk(ctab, pred, &sel[r])
            })?;
            return Ok(chunks.concat());
        }
        return generic_filter_chunk(ctab, pred, &sel);
    }
    if par.engaged(sel.len()) {
        let chunks = morsel::run(sel.len(), par, |r| {
            narrow_by_kernels(ctab, &conjuncts, sel[r].to_vec())
        });
        return Ok(chunks.concat());
    }
    sel = narrow_by_kernels(ctab, &conjuncts, sel);
    Ok(sel)
}

/// Apply every kernel conjunct in order to one selection (the sequential
/// inner loop of [`filter`], shared by its morsel workers).
fn narrow_by_kernels(
    ctab: &ColumnarTable,
    conjuncts: &[&CompiledExpr],
    mut sel: Vec<u32>,
) -> Vec<u32> {
    for c in conjuncts {
        if sel.is_empty() {
            break;
        }
        sel = apply_kernel(ctab, c, sel);
    }
    sel
}

/// Does this conjunct have an infallible columnar kernel?
pub(crate) fn kernelizable(ctab: &ColumnarTable, e: &CompiledExpr) -> bool {
    match e {
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => matches!(
            (&**left, &**right),
            (CompiledExpr::Column(_), CompiledExpr::Literal(_))
                | (CompiledExpr::Literal(_), CompiledExpr::Column(_))
        ),
        CompiledExpr::IsNull { expr, .. } => matches!(&**expr, CompiledExpr::Column(_)),
        // LIKE can only error on non-string values, so the kernel (and
        // its infallibility) requires an all-string column.
        CompiledExpr::Like { expr, pattern, .. } => match (&**expr, &**pattern) {
            (CompiledExpr::Column(c), CompiledExpr::Literal(Value::Str(_))) => {
                matches!(ctab.columns[*c].data, ColumnData::Str(_))
            }
            _ => false,
        },
        _ => false,
    }
}

pub(crate) fn collect_conjuncts<'e>(e: &'e CompiledExpr, out: &mut Vec<&'e CompiledExpr>) {
    if let CompiledExpr::Binary {
        op: BinaryOperator::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Run one [`kernelizable`] conjunct over the selection.
fn apply_kernel(ctab: &ColumnarTable, e: &CompiledExpr, sel: Vec<u32>) -> Vec<u32> {
    let pred = kernel_predicate(ctab, e);
    sel.into_iter().filter(|&i| pred(i as usize)).collect()
}

/// Row predicate for one [`kernelizable`] conjunct: `true` iff the row
/// passes. NULL rows never pass comparisons or LIKE (SQL filter
/// semantics); `IS [NOT] NULL` follows its negation. The type dispatch
/// happens once here, so callers can apply the returned closure across
/// selection vectors or join match vectors alike.
pub(crate) fn kernel_predicate<'a>(
    ctab: &'a ColumnarTable,
    e: &'a CompiledExpr,
) -> Box<dyn Fn(usize) -> bool + 'a> {
    match e {
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => {
            if let (CompiledExpr::Column(c), CompiledExpr::Literal(v)) = (&**left, &**right) {
                return cmp_predicate(&ctab.columns[*c], *op, v);
            }
            if let (CompiledExpr::Literal(v), CompiledExpr::Column(c)) = (&**left, &**right) {
                return cmp_predicate(&ctab.columns[*c], flip(*op), v);
            }
            unreachable!("kernelizable comparison without column/literal shape")
        }
        CompiledExpr::IsNull { expr, negated } => {
            let CompiledExpr::Column(c) = &**expr else {
                unreachable!("kernelizable IS NULL without a column")
            };
            let col = &ctab.columns[*c];
            let negated = *negated;
            Box::new(move |i| col.is_null(i) != negated)
        }
        CompiledExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let (CompiledExpr::Column(c), CompiledExpr::Literal(Value::Str(p))) =
                (&**expr, &**pattern)
            else {
                unreachable!("kernelizable LIKE without column/literal shape")
            };
            let col = &ctab.columns[*c];
            let ColumnData::Str(ss) = &col.data else {
                unreachable!("kernelizable LIKE over a non-string column")
            };
            let negated = *negated;
            Box::new(move |i| !col.is_null(i) && (like_match(&ss[i], p) != negated))
        }
        _ => unreachable!("kernel_predicate called on a non-kernel conjunct"),
    }
}

/// What a kernel yields on the NULL-padded side of an unmatched LEFT
/// JOIN row, where every column reads as NULL: only a non-negated
/// `IS NULL` keeps the row.
pub(crate) fn kernel_keeps_all_null(e: &CompiledExpr) -> bool {
    matches!(e, CompiledExpr::IsNull { negated: false, .. })
}

/// Fallback conjunct evaluation: scalar-interpret `e` per surviving row,
/// gathering only the columns it references into a scratch row. Produces
/// exactly the row engine's values (shared evaluator), including errors.
fn generic_filter_chunk(ctab: &ColumnarTable, e: &CompiledExpr, sel: &[u32]) -> Result<Vec<u32>> {
    let mut refs = Vec::new();
    e.for_each_column(&mut |i| refs.push(i));
    refs.sort_unstable();
    refs.dedup();
    let mut scratch: Row = vec![Value::Null; ctab.columns.len()];
    let mut out = Vec::with_capacity(sel.len());
    for &i in sel {
        let idx = i as usize;
        for &c in &refs {
            scratch[c] = ctab.columns[c].value(idx);
        }
        if e.eval_bool(&scratch)? {
            out.push(i);
        }
    }
    Ok(out)
}

/// Mirror a comparison so `lit op col` becomes `col op' lit`.
fn flip(op: BinaryOperator) -> BinaryOperator {
    match op {
        BinaryOperator::Lt => BinaryOperator::Gt,
        BinaryOperator::Gt => BinaryOperator::Lt,
        BinaryOperator::LtEq => BinaryOperator::GtEq,
        BinaryOperator::GtEq => BinaryOperator::LtEq,
        other => other,
    }
}

// ---- columnar hash join -------------------------------------------------

/// If `e` (compiled against the combined join scope of width `lw + rw`)
/// is a single-side kernel-shaped conjunct, return its side and the
/// kernel rebased to that side's local column indices; else `None`.
///
/// `l_like` / `r_like` say, per side-local column, whether a `LIKE`
/// kernel may run on it (physically `Str` columns only — the shape-only
/// check the planner needs, since derived-table leaves have no
/// plan-time column types and pass all-`false` slices).
pub(crate) fn side_kernel(
    e: &CompiledExpr,
    lw: usize,
    l_like: &[bool],
    r_like: &[bool],
) -> Option<(JoinSide, CompiledExpr)> {
    // Kernel shapes reference exactly one column, which pins the side.
    let mut cols = Vec::new();
    e.for_each_column(&mut |i| cols.push(i));
    let [c] = cols[..] else { return None };
    if c < lw {
        kernel_shape_ok(e, l_like).then(|| (JoinSide::Left, e.clone()))
    } else {
        let rebased = rebase_kernel_shape(e, lw)?;
        kernel_shape_ok(&rebased, r_like).then_some((JoinSide::Right, rebased))
    }
}

/// The shape half of [`kernelizable`], decidable at plan time from a
/// per-column `LIKE`-eligibility slice instead of a materialized
/// [`ColumnarTable`].
fn kernel_shape_ok(e: &CompiledExpr, like_ok: &[bool]) -> bool {
    match e {
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => matches!(
            (&**left, &**right),
            (CompiledExpr::Column(_), CompiledExpr::Literal(_))
                | (CompiledExpr::Literal(_), CompiledExpr::Column(_))
        ),
        CompiledExpr::IsNull { expr, .. } => matches!(&**expr, CompiledExpr::Column(_)),
        CompiledExpr::Like { expr, pattern, .. } => match (&**expr, &**pattern) {
            (CompiledExpr::Column(c), CompiledExpr::Literal(Value::Str(_))) => like_ok[*c],
            _ => false,
        },
        _ => false,
    }
}

/// Rebase every column index in a candidate kernel expression by
/// `-offset`. Returns `None` for shapes a kernel can never take (deep
/// trees are not worth cloning just to fail [`kernelizable`]).
fn rebase_kernel_shape(e: &CompiledExpr, offset: usize) -> Option<CompiledExpr> {
    let leaf = |e: &CompiledExpr| match e {
        CompiledExpr::Column(i) => Some(CompiledExpr::Column(i - offset)),
        CompiledExpr::Literal(v) => Some(CompiledExpr::Literal(v.clone())),
        _ => None,
    };
    match e {
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => {
            Some(CompiledExpr::Binary {
                op: *op,
                left: Box::new(leaf(left)?),
                right: Box::new(leaf(right)?),
            })
        }
        CompiledExpr::IsNull { expr, negated } => Some(CompiledExpr::IsNull {
            expr: Box::new(leaf(expr)?),
            negated: *negated,
        }),
        CompiledExpr::Like {
            expr,
            pattern,
            negated,
        } => Some(CompiledExpr::Like {
            expr: Box::new(leaf(expr)?),
            pattern: Box::new(leaf(pattern)?),
            negated: *negated,
        }),
        _ => None,
    }
}

/// Hash index over the right (build) side's join-key columns. Key
/// equality must match the row engine's `ValueKey` semantics exactly.
/// The `i64`/`&str` specializations are chosen from the *build side's*
/// physical column type alone (where `ValueKey` equality degenerates to
/// plain equality); a left key column of a different physical type is
/// handled in [`JoinIndex::probe`], whose fall-through arms route
/// through `ValueKey` so `1` still joins `1.0` — do not simplify those
/// arms away. Bucket candidate lists are in right-table order, so probes
/// emit matches in the row engine's order.
enum JoinIndex<'a> {
    Int(HashMap<i64, Vec<u32>>),
    Str(HashMap<&'a str, Vec<u32>>),
    Value(HashMap<ValueKey, Vec<u32>>),
    Multi(HashMap<RowKey, Vec<u32>>),
}

impl<'a> JoinIndex<'a> {
    /// Build over the (already filtered) right selection. Rows with any
    /// NULL key column never enter the index — NULL keys never match.
    fn build(rtab: &'a ColumnarTable, key_pairs: &[(usize, usize)], rsel: &[u32]) -> JoinIndex<'a> {
        if let [(_, rk)] = key_pairs {
            let col = &rtab.columns[*rk];
            match &col.data {
                ColumnData::Int64(xs) => {
                    let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
                    for &ri in rsel {
                        let idx = ri as usize;
                        if !col.is_null(idx) {
                            map.entry(xs[idx]).or_default().push(ri);
                        }
                    }
                    return JoinIndex::Int(map);
                }
                ColumnData::Str(ss) => {
                    let mut map: HashMap<&str, Vec<u32>> = HashMap::new();
                    for &ri in rsel {
                        let idx = ri as usize;
                        if !col.is_null(idx) {
                            map.entry(ss[idx].as_str()).or_default().push(ri);
                        }
                    }
                    return JoinIndex::Str(map);
                }
                _ => {
                    let mut map: HashMap<ValueKey, Vec<u32>> = HashMap::new();
                    for &ri in rsel {
                        let idx = ri as usize;
                        if !col.is_null(idx) {
                            map.entry(ValueKey::from(&col.value(idx)))
                                .or_default()
                                .push(ri);
                        }
                    }
                    return JoinIndex::Value(map);
                }
            }
        }
        let mut map: HashMap<RowKey, Vec<u32>> = HashMap::new();
        'right: for &ri in rsel {
            let idx = ri as usize;
            let mut key = Vec::with_capacity(key_pairs.len());
            for &(_, rk) in key_pairs {
                let col = &rtab.columns[rk];
                if col.is_null(idx) {
                    continue 'right;
                }
                key.push(ValueKey::from(&col.value(idx)));
            }
            map.entry(RowKey(key)).or_default().push(ri);
        }
        JoinIndex::Multi(map)
    }

    /// Candidate right rows for left row `lidx`, or `None` when the key
    /// is NULL or absent. The `Int`/`Str` arms cover mismatched physical
    /// types by falling through `ValueKey` where needed.
    fn probe(
        &self,
        ltab: &ColumnarTable,
        key_pairs: &[(usize, usize)],
        lidx: usize,
    ) -> Option<&[u32]> {
        match self {
            JoinIndex::Int(map) => {
                let (lk, _) = key_pairs[0];
                let col = &ltab.columns[lk];
                if col.is_null(lidx) {
                    return None;
                }
                match &col.data {
                    ColumnData::Int64(xs) => map.get(&xs[lidx]).map(Vec::as_slice),
                    // Left key is not physically Int64: go through
                    // ValueKey, which unifies integral floats with ints.
                    _ => match ValueKey::from(&col.value(lidx)) {
                        ValueKey::Int(k) => map.get(&k).map(Vec::as_slice),
                        _ => None,
                    },
                }
            }
            JoinIndex::Str(map) => {
                let (lk, _) = key_pairs[0];
                let col = &ltab.columns[lk];
                if col.is_null(lidx) {
                    return None;
                }
                match &col.data {
                    ColumnData::Str(ss) => map.get(ss[lidx].as_str()).map(Vec::as_slice),
                    ColumnData::Mixed(vs) => match &vs[lidx] {
                        Value::Str(s) => map.get(s.as_str()).map(Vec::as_slice),
                        _ => None,
                    },
                    _ => None,
                }
            }
            JoinIndex::Value(map) => {
                let (lk, _) = key_pairs[0];
                let col = &ltab.columns[lk];
                if col.is_null(lidx) {
                    return None;
                }
                map.get(&ValueKey::from(&col.value(lidx)))
                    .map(Vec::as_slice)
            }
            JoinIndex::Multi(map) => {
                let mut key = Vec::with_capacity(key_pairs.len());
                for &(lk, _) in key_pairs {
                    let col = &ltab.columns[lk];
                    if col.is_null(lidx) {
                        return None;
                    }
                    key.push(ValueKey::from(&col.value(lidx)));
                }
                map.get(&RowKey(key)).map(Vec::as_slice)
            }
        }
    }
}

/// Evaluator for fallible ON-residual conjuncts: a scratch combined row
/// holding only the columns the residual references, refilled per side as
/// the probe walks candidate pairs. Produces exactly the row engine's
/// values and errors (shared interpreter, same evaluation order).
struct ResidualEval<'a> {
    residual: &'a [CompiledExpr],
    lrefs: Vec<usize>,
    rrefs: Vec<usize>,
    scratch: Row,
}

impl<'a> ResidualEval<'a> {
    fn new(residual: &'a [CompiledExpr], lw: usize, rw: usize) -> ResidualEval<'a> {
        let mut refs = Vec::new();
        for e in residual {
            e.for_each_column(&mut |i| refs.push(i));
        }
        refs.sort_unstable();
        refs.dedup();
        let (lrefs, rrefs): (Vec<_>, Vec<_>) = refs.into_iter().partition(|&i| i < lw);
        ResidualEval {
            residual,
            lrefs,
            rrefs,
            scratch: vec![Value::Null; lw + rw],
        }
    }

    fn load_left(&mut self, ltab: &ColumnarTable, lidx: usize) {
        for &c in &self.lrefs {
            self.scratch[c] = ltab.columns[c].value(lidx);
        }
    }

    /// Whether the candidate pair passes every residual conjunct,
    /// short-circuiting on the first non-TRUE like the row engine.
    fn pair_ok(&mut self, rtab: &ColumnarTable, lw: usize, ridx: usize) -> Result<bool> {
        for &c in &self.rrefs {
            self.scratch[c] = rtab.columns[c - lw].value(ridx);
        }
        for p in self.residual {
            if !p.eval_bool(&self.scratch)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Apply one post-join kernel to the match vectors in place. On the
/// NULL-padded side of an unmatched outer-join row (right side of a
/// LEFT pad, left side of a RIGHT pad) every column reads NULL, so only
/// a non-negated `IS NULL` keeps the pad.
fn apply_pair_kernel(
    ltab: &ColumnarTable,
    rtab: &ColumnarTable,
    side: JoinSide,
    kernel: &CompiledExpr,
    pairs_l: &mut Vec<u32>,
    pairs_r: &mut Vec<u32>,
) {
    let tab = match side {
        JoinSide::Left => ltab,
        JoinSide::Right => rtab,
    };
    let pred = kernel_predicate(tab, kernel);
    let keeps_pad = kernel_keeps_all_null(kernel);
    let mut w = 0;
    for k in 0..pairs_l.len() {
        let idx = match side {
            JoinSide::Left => pairs_l[k],
            JoinSide::Right => pairs_r[k],
        };
        let keep = if idx == GATHER_NULL {
            keeps_pad
        } else {
            pred(idx as usize)
        };
        if keep {
            pairs_l[w] = pairs_l[k];
            pairs_r[w] = pairs_r[k];
            w += 1;
        }
    }
    pairs_l.truncate(w);
    pairs_r.truncate(w);
}

/// Post-join evaluation of a whole WHERE predicate that has no kernel
/// decomposition: scalar-interpret it per joined row (in output order)
/// over a scratch row holding only the referenced columns. Exactly the
/// row engine's filter — same values, same short-circuit, same errors.
fn generic_pair_filter(
    ltab: &ColumnarTable,
    rtab: &ColumnarTable,
    pred: &CompiledExpr,
    pairs_l: &mut Vec<u32>,
    pairs_r: &mut Vec<u32>,
) -> Result<()> {
    let lw = ltab.columns.len();
    let mut refs = Vec::new();
    pred.for_each_column(&mut |i| refs.push(i));
    refs.sort_unstable();
    refs.dedup();
    let (lrefs, rrefs): (Vec<_>, Vec<_>) = refs.into_iter().partition(|&i| i < lw);
    let mut scratch: Row = vec![Value::Null; lw + rtab.columns.len()];
    let mut w = 0;
    for k in 0..pairs_l.len() {
        let (li, ri) = (pairs_l[k], pairs_r[k]);
        for &c in &lrefs {
            scratch[c] = if li == GATHER_NULL {
                Value::Null
            } else {
                ltab.columns[c].value(li as usize)
            };
        }
        for &c in &rrefs {
            scratch[c] = if ri == GATHER_NULL {
                Value::Null
            } else {
                rtab.columns[c - lw].value(ri as usize)
            };
        }
        if pred.eval_bool(&scratch)? {
            pairs_l[w] = li;
            pairs_r[w] = ri;
            w += 1;
        }
    }
    pairs_l.truncate(w);
    pairs_r.truncate(w);
    Ok(())
}

/// The tree root's WHERE split: side-tagged pushed kernels plus the
/// compiled post-join residual filter.
type PostSplit<'p> = (&'p [(JoinSide, CompiledExpr)], Option<&'p CompiledExpr>);

/// Bottom-up executor over a planned join tree ([`TreePlan`]): each
/// node's children materialize first (left before right — the row
/// engine's FROM evaluation order, so errors inside derived leaves
/// surface identically), then the node joins them into a columnar
/// intermediate holding only the columns its parent needs.
struct TreeExec<'e> {
    db: &'e Database,
    par: Parallelism,
    stats: &'e mut VexecStats,
    /// Longest leaf scanned, for the worker-entitlement stat.
    max_leaf: usize,
}

impl TreeExec<'_> {
    fn exec_node(
        &mut self,
        node: &PlanNode,
        leaves: &[plan::Leaf<'_>],
    ) -> Result<Arc<ColumnarTable>> {
        match node {
            PlanNode::Scan(i) => match &leaves[*i].source {
                LeafSource::Base(ctab) => {
                    self.note_leaf(ctab.len());
                    Ok(ctab.clone())
                }
                // A derived leaf executes its subquery (routed
                // independently — vectorized when it can be) and
                // columnarizes the result.
                LeafSource::Derived { query, width } => {
                    let rs = exec::execute(self.db, query)?;
                    debug_assert_eq!(rs.columns.len(), *width, "static width matches runtime");
                    let ctab = ColumnarTable::from_rows(&rs.rows, *width);
                    self.note_leaf(ctab.len());
                    Ok(Arc::new(ctab))
                }
            },
            PlanNode::Join(j) => self.exec_join(j, None, leaves),
        }
    }

    fn note_leaf(&mut self, len: usize) {
        self.stats.rows_scanned += len as u64;
        self.stats.morsels += morsel_count(len, self.par);
        self.max_leaf = self.max_leaf.max(len);
    }

    /// Join one node's children into `(left, right)` match vectors and
    /// late-materialize the live columns. `post` carries the WHERE
    /// split (kernels + residual filter) at the tree root only.
    ///
    /// `PostSplit` borrows the root's pushed WHERE kernels (tagged by
    /// side) and the compiled residual filter.
    ///
    /// Emission order is always the row engine's: matches stream in
    /// left-row order with each bucket in right-row order, unmatched
    /// left rows of a pad-keeping join emit in place, and unmatched
    /// right rows append at the end in right-row order. The swapped
    /// build path restores that order by sorting its pair vector.
    fn exec_join(
        &mut self,
        node: &JoinNode,
        post: Option<PostSplit<'_>>,
        leaves: &[plan::Leaf<'_>],
    ) -> Result<Arc<ColumnarTable>> {
        let ltab = self.exec_node(&node.left, leaves)?;
        let rtab = self.exec_node(&node.right, leaves)?;
        let par = self.par;
        let (lw, rw) = (node.lw, node.rw);
        debug_assert_eq!(ltab.columns.len(), lw);
        debug_assert_eq!(rtab.columns.len(), rw);
        let keep_l = plan::keeps_unmatched(node.join_type, JoinSide::Left);
        let keep_r = plan::keeps_unmatched(node.join_type, JoinSide::Right);

        // Scans: selection vectors narrowed by the pushed-down drop
        // kernels (sound on a side only when it keeps no pads), then the
        // match-only kernels (ON conjuncts on a pad-keeping right side:
        // failing rows cannot match but still pad).
        let lsel = kernel_scan(&ltab, &node.left_kernels, par);
        let rsel = kernel_scan(&rtab, &node.right_kernels, par);
        let rmatch = if node.right_match_kernels.is_empty() {
            rsel.clone()
        } else {
            let refs: Vec<&CompiledExpr> = node.right_match_kernels.iter().collect();
            narrow_by_kernels(&rtab, &refs, rsel.clone())
        };

        // Record this join in the scheduling trace (post-order position;
        // the `swapped` bit says the build ran on the left input).
        let jidx = self.stats.join_order.joins;
        self.stats.join_order.joins = jidx.saturating_add(1);

        let (mut pairs_l, mut pairs_r) = if node.key_pairs.is_empty() {
            // CROSS and pure non-equi joins: nested-loop morsels.
            nested_loop_join(&ltab, &rtab, node, &lsel, &rmatch, keep_l, par)?
        } else if matches!(node.join_type, JoinType::Inner)
            && node.residual.is_empty()
            && node.left_match_kernels.is_empty()
            && lsel.len() < rmatch.len()
        {
            // Greedy smallest-estimated-input-first: build on the
            // smaller (already kernel-narrowed) input. Only pure INNER
            // equi-joins swap — pads and fallible residuals pin the
            // probe side — and the pair sort below makes the swap
            // invisible to result bytes.
            if jidx < 8 {
                self.stats.join_order.swapped |= 1 << jidx;
            }
            swapped_equi_join(&ltab, &rtab, &node.key_pairs, &lsel, &rmatch, par)
        } else {
            // Build + probe. The build side is sequential (its bucket
            // lists must be in right-table order); probing walks the
            // left side in order and each bucket in right-table order,
            // so matches come out exactly in the row engine's
            // combined-row order; unmatched left rows of a pad-keeping
            // join are emitted in place with the GATHER_NULL pad.
            // Parallel probes claim morsels of `lsel` against the shared
            // read-only index and their match vectors concatenate in
            // morsel order — the same pair sequence.
            let index = JoinIndex::build(&rtab, &node.key_pairs, &rmatch);
            let probe_chunk = |chunk: &[u32]| -> Result<(Vec<u32>, Vec<u32>)> {
                let left_preds: Vec<_> = node
                    .left_match_kernels
                    .iter()
                    .map(|k| kernel_predicate(&ltab, k))
                    .collect();
                let mut residual =
                    (!node.residual.is_empty()).then(|| ResidualEval::new(&node.residual, lw, rw));
                let mut pairs_l: Vec<u32> = Vec::with_capacity(chunk.len());
                let mut pairs_r: Vec<u32> = Vec::with_capacity(chunk.len());
                for &li in chunk {
                    let lidx = li as usize;
                    let mut matched = false;
                    if left_preds.iter().all(|p| p(lidx)) {
                        if let Some(candidates) = index.probe(&ltab, &node.key_pairs, lidx) {
                            if let Some(res) = &mut residual {
                                res.load_left(&ltab, lidx);
                                for &ri in candidates {
                                    if res.pair_ok(&rtab, lw, ri as usize)? {
                                        matched = true;
                                        pairs_l.push(li);
                                        pairs_r.push(ri);
                                    }
                                }
                            } else {
                                matched = !candidates.is_empty();
                                for &ri in candidates {
                                    pairs_l.push(li);
                                    pairs_r.push(ri);
                                }
                            }
                        }
                    }
                    if !matched && keep_l {
                        pairs_l.push(li);
                        pairs_r.push(GATHER_NULL);
                    }
                }
                Ok((pairs_l, pairs_r))
            };
            if par.engaged(lsel.len()) {
                let chunks = morsel::try_run(lsel.len(), par, |r| probe_chunk(&lsel[r]))?;
                let total = chunks.iter().map(|(l, _)| l.len()).sum();
                let mut pairs_l: Vec<u32> = Vec::with_capacity(total);
                let mut pairs_r: Vec<u32> = Vec::with_capacity(total);
                for (l, r) in chunks {
                    pairs_l.extend(l);
                    pairs_r.extend(r);
                }
                (pairs_l, pairs_r)
            } else {
                probe_chunk(&lsel)?
            }
        };

        // Matched-bit tracking for RIGHT/FULL joins: right rows no
        // surviving pair references pad with a NULL left side, appended
        // after every match in right-row order — the row engine's
        // emission order. Pads come from `rsel` (not `rmatch`): rows
        // failing a match-only kernel still pad, and drop-kernel
        // narrowing of a pad-keeping side is blocked at plan time.
        if keep_r {
            let mut matched = vec![false; rtab.len()];
            for &rj in pairs_r.iter() {
                if rj != GATHER_NULL {
                    matched[rj as usize] = true;
                }
            }
            for &rj in &rsel {
                if !matched[rj as usize] {
                    pairs_l.push(GATHER_NULL);
                    pairs_r.push(rj);
                }
            }
        }

        // Post-join filters (WHERE conjuncts that could not be pushed),
        // applied per pair at the tree root — after pads, exactly where
        // the row engine filters the joined relation.
        if let Some((post_kernels, post_filter)) = post {
            if par.engaged(pairs_l.len()) && (!post_kernels.is_empty() || post_filter.is_some()) {
                let chunks = morsel::try_run(pairs_l.len(), par, |range| {
                    let mut pl = pairs_l[range.clone()].to_vec();
                    let mut pr = pairs_r[range].to_vec();
                    for (side, k) in post_kernels {
                        if pl.is_empty() {
                            break;
                        }
                        apply_pair_kernel(&ltab, &rtab, *side, k, &mut pl, &mut pr);
                    }
                    if let Some(pred) = post_filter {
                        generic_pair_filter(&ltab, &rtab, pred, &mut pl, &mut pr)?;
                    }
                    Ok::<_, DbError>((pl, pr))
                })?;
                pairs_l.clear();
                pairs_r.clear();
                for (l, r) in chunks {
                    pairs_l.extend(l);
                    pairs_r.extend(r);
                }
            } else {
                for (side, k) in post_kernels {
                    if pairs_l.is_empty() {
                        break;
                    }
                    apply_pair_kernel(&ltab, &rtab, *side, k, &mut pairs_l, &mut pairs_r);
                }
                if let Some(pred) = post_filter {
                    generic_pair_filter(&ltab, &rtab, pred, &mut pairs_l, &mut pairs_r)?;
                }
            }
        }

        // Late materialization: gather only the live columns; dead
        // columns become all-NULL placeholders nothing downstream reads
        // (liveness planning guarantees no parent gathers them).
        let n = pairs_l.len();
        let mut columns = Vec::with_capacity(lw + rw);
        for (c, col) in ltab.columns.iter().enumerate() {
            columns.push(if node.live_cols[c] {
                col.gather(&pairs_l)
            } else {
                Column::all_null(n)
            });
        }
        for (c, col) in rtab.columns.iter().enumerate() {
            columns.push(if node.live_cols[lw + c] {
                col.gather(&pairs_r)
            } else {
                Column::all_null(n)
            });
        }
        Ok(Arc::new(ColumnarTable::from_columns(columns, n)))
    }
}

/// Nested-loop join for keyless nodes (CROSS joins and pure non-equi ON
/// constraints): every surviving left row pairs against every
/// match-eligible right row, gated by the fallible residual (evaluated
/// in ON-conjunct order, left rows outermost — the row engine's loop,
/// so values, short-circuits and errors are identical). Morsels split
/// the left side; the earliest morsel's error wins, which is the
/// sequential error.
fn nested_loop_join(
    ltab: &ColumnarTable,
    rtab: &ColumnarTable,
    node: &JoinNode,
    lsel: &[u32],
    rmatch: &[u32],
    keep_l: bool,
    par: Parallelism,
) -> Result<(Vec<u32>, Vec<u32>)> {
    let (lw, rw) = (node.lw, node.rw);
    let chunk_fn = |chunk: &[u32]| -> Result<(Vec<u32>, Vec<u32>)> {
        let left_preds: Vec<_> = node
            .left_match_kernels
            .iter()
            .map(|k| kernel_predicate(ltab, k))
            .collect();
        let mut residual =
            (!node.residual.is_empty()).then(|| ResidualEval::new(&node.residual, lw, rw));
        let mut pairs_l: Vec<u32> = Vec::new();
        let mut pairs_r: Vec<u32> = Vec::new();
        for &li in chunk {
            let lidx = li as usize;
            let mut matched = false;
            if left_preds.iter().all(|p| p(lidx)) {
                if let Some(res) = &mut residual {
                    res.load_left(ltab, lidx);
                    for &ri in rmatch {
                        if res.pair_ok(rtab, lw, ri as usize)? {
                            matched = true;
                            pairs_l.push(li);
                            pairs_r.push(ri);
                        }
                    }
                } else {
                    matched = !rmatch.is_empty();
                    for &ri in rmatch {
                        pairs_l.push(li);
                        pairs_r.push(ri);
                    }
                }
            }
            if !matched && keep_l {
                pairs_l.push(li);
                pairs_r.push(GATHER_NULL);
            }
        }
        Ok((pairs_l, pairs_r))
    };
    if par.engaged(lsel.len()) {
        let chunks = morsel::try_run(lsel.len(), par, |r| chunk_fn(&lsel[r]))?;
        let total = chunks.iter().map(|(l, _)| l.len()).sum();
        let mut pairs_l: Vec<u32> = Vec::with_capacity(total);
        let mut pairs_r: Vec<u32> = Vec::with_capacity(total);
        for (l, r) in chunks {
            pairs_l.extend(l);
            pairs_r.extend(r);
        }
        Ok((pairs_l, pairs_r))
    } else {
        chunk_fn(lsel)
    }
}

/// Pure INNER equi-join with the build side swapped onto the smaller
/// left input: build over `lsel`, probe `rmatch` morsel-parallel, then
/// sort the pair vector by `(left, right)` — bucket lists are ascending
/// and pairs are unique, so the sort reproduces exactly the unswapped
/// (row engine) emission order. Infallible by construction (no residual,
/// no pads), which is what makes the order restoration a pure
/// permutation.
fn swapped_equi_join(
    ltab: &ColumnarTable,
    rtab: &ColumnarTable,
    key_pairs: &[(usize, usize)],
    lsel: &[u32],
    rmatch: &[u32],
    par: Parallelism,
) -> (Vec<u32>, Vec<u32>) {
    let inv: Vec<(usize, usize)> = key_pairs.iter().map(|&(lk, rk)| (rk, lk)).collect();
    let index = JoinIndex::build(ltab, &inv, lsel);
    let probe_chunk = |chunk: &[u32]| -> Vec<(u32, u32)> {
        let mut pairs = Vec::with_capacity(chunk.len());
        for &ri in chunk {
            if let Some(candidates) = index.probe(rtab, &inv, ri as usize) {
                for &li in candidates {
                    pairs.push((li, ri));
                }
            }
        }
        pairs
    };
    let mut pairs: Vec<(u32, u32)> = if par.engaged(rmatch.len()) {
        morsel::run(rmatch.len(), par, |r| probe_chunk(&rmatch[r])).concat()
    } else {
        probe_chunk(rmatch)
    };
    pairs.sort_unstable();
    (
        pairs.iter().map(|p| p.0).collect(),
        pairs.iter().map(|p| p.1).collect(),
    )
}

/// Run a planned join tree: execute it bottom-up (each join
/// late-materializing only live columns into a columnar intermediate),
/// then the shared WHERE-residue, aggregate and projection tail over
/// the root's output. Byte-identical to the row interpreter — see
/// [`crate::plan`] for why each pushdown preserves that.
fn run_tree(
    db: &Database,
    q: &Query,
    s: &Select,
    tree: TreePlan<'_>,
    stats: &mut VexecStats,
) -> Result<ResultSet> {
    let par = db.exec_tuning();
    let mut texec = TreeExec {
        db,
        par,
        stats,
        max_leaf: 0,
    };
    let joined = texec.exec_join(
        &tree.root,
        Some((&tree.post_kernels, tree.post_filter.as_ref())),
        &tree.leaves,
    );
    let max_leaf = texec.max_leaf;
    stats.workers = if par.engaged(max_leaf) {
        par.workers
    } else {
        1
    } as u64;
    let joined = joined?;
    let sel: Vec<u32> = (0..joined.len() as u32).collect();
    let mut ex = Exec::new(db);
    finish_block(
        &mut ex,
        q,
        s,
        tree.cols,
        &joined,
        &sel,
        par,
        &mut stats.topk,
    )
}

/// Run a UNION / UNION ALL tree: arms execute left-to-right through the
/// ordinary block pipeline (each arm routed vectorized at plan time),
/// their rows concatenate into one columnar intermediate, the set-op
/// tree's DISTINCT nodes dedupe index ranges bottom-up, and the union's
/// ORDER BY / LIMIT tail runs on indices like [`run_tail`].
fn run_union(
    db: &Database,
    q: &Query,
    route: &UnionRoute<'_>,
    stats: &mut VexecStats,
) -> Result<ResultSet> {
    let par = db.exec_tuning();
    // 1. Execute every arm in the row engine's depth-first order; the
    // earliest arm error propagates, like the row engine's recursion.
    let mut arm_results: Vec<ResultSet> = Vec::with_capacity(route.arms.len());
    let mut workers = 1u64;
    for s in &route.arms {
        let synth = arm_query(s);
        let (result, arm_stats) = try_execute_traced(db, &synth)
            .unwrap_or_else(|_| unreachable!("arms routed at plan time; routing is deterministic"));
        stats.morsels += arm_stats.morsels;
        stats.rows_scanned += arm_stats.rows_scanned;
        workers = workers.max(arm_stats.workers);
        // Concatenate arm join orders into one (best-effort) record.
        let shift = stats.join_order.joins;
        if shift < 8 {
            stats.join_order.swapped |= arm_stats.join_order.swapped << shift;
        }
        stats.join_order.joins = stats
            .join_order
            .joins
            .saturating_add(arm_stats.join_order.joins);
        arm_results.push(result?);
    }
    stats.workers = workers;

    // 2. Concatenate rows columnar. Arity is statically verified equal
    // across arms, so the row engine's runtime arity check cannot fire.
    let columns = arm_results[0].columns.clone();
    let mut ranges: Vec<std::ops::Range<u32>> = Vec::with_capacity(arm_results.len());
    let mut all_rows: Vec<Row> = Vec::new();
    for rs in &mut arm_results {
        let start = all_rows.len() as u32;
        all_rows.append(&mut rs.rows);
        ranges.push(start..all_rows.len() as u32);
    }
    let ctab = ColumnarTable::from_rows(&all_rows, route.arity);
    drop(all_rows);

    // 3. The set-op tree dedupes index ranges bottom-up; the result is
    // a strictly ascending index list in set-op emission order.
    let mut next_arm = 0usize;
    let srcs: Vec<usize> = (0..route.arity).collect();
    let mut idx = union_indices(&q.body, &ranges, &mut next_arm, &ctab, &srcs);

    // 4. Union ORDER BY sorts by output columns only; ties keep set-op
    // emission order (index tie-break = the row engine's stable sort).
    if !route.sort.is_empty() {
        let mut topk_unused = false;
        idx = ordered_indices(&ctab, &route.sort, &idx, None, par, &mut topk_unused);
    }
    if let Some(off) = q.offset {
        idx.drain(..(off as usize).min(idx.len()));
    }
    if let Some(lim) = q.limit {
        idx.truncate(lim as usize);
    }
    let rows = materialize_rows(&ctab, &idx, &srcs, par);
    Ok(ResultSet { columns, rows })
}

/// The surviving row indices of a set-op tree over the concatenated
/// arm rows: leaves consume arm ranges in depth-first order, UNION ALL
/// concatenates, and UNION (distinct) keeps first occurrences over
/// full-row keys — the same partition the row engine's `RowKey` dedupe
/// produces at each node.
fn union_indices(
    e: &SetExpr,
    ranges: &[std::ops::Range<u32>],
    next_arm: &mut usize,
    ctab: &ColumnarTable,
    srcs: &[usize],
) -> Vec<u32> {
    match e {
        SetExpr::Select(_) => {
            let r = ranges[*next_arm].clone();
            *next_arm += 1;
            r.collect()
        }
        SetExpr::SetOp {
            all, left, right, ..
        } => {
            let mut idx = union_indices(left, ranges, next_arm, ctab, srcs);
            idx.extend(union_indices(right, ranges, next_arm, ctab, srcs));
            if !*all {
                let mut seen: HashSet<Vec<BorrowKey<'_>>> = HashSet::new();
                idx.retain(|&i| seen.insert(distinct_key(ctab, srcs, i as usize)));
            }
            idx
        }
    }
}

/// Narrow a full-table scan by a list of pushed-down kernels
/// (morsel-parallel when engaged; identity selection when `kernels` is
/// empty).
fn kernel_scan(tab: &ColumnarTable, kernels: &[CompiledExpr], par: Parallelism) -> Vec<u32> {
    let len = tab.len();
    let refs: Vec<&CompiledExpr> = kernels.iter().collect();
    if par.engaged(len) && !kernels.is_empty() {
        return morsel::run(len, par, |r| {
            narrow_by_kernels(tab, &refs, (r.start as u32..r.end as u32).collect())
        })
        .concat();
    }
    narrow_by_kernels(tab, &refs, (0..len as u32).collect())
}

/// Row predicate for `column op literal`, with the exact semantics of
/// [`Value::sql_cmp`]: NULLs and incomparable type pairs never match.
fn cmp_predicate<'a>(
    col: &'a Column,
    op: BinaryOperator,
    lit: &Value,
) -> Box<dyn Fn(usize) -> bool + 'a> {
    if lit.is_null() {
        return Box::new(|_| false);
    }
    let keep = move |ord: Ordering| match op {
        BinaryOperator::Eq => ord == Ordering::Equal,
        BinaryOperator::NotEq => ord != Ordering::Equal,
        BinaryOperator::Lt => ord == Ordering::Less,
        BinaryOperator::LtEq => ord != Ordering::Greater,
        BinaryOperator::Gt => ord == Ordering::Greater,
        BinaryOperator::GtEq => ord != Ordering::Less,
        _ => unreachable!("comparison op"),
    };
    let has_nulls = col.nulls.any();
    macro_rules! pred {
        ($cmp_at:expr) => {{
            let cmp_at = $cmp_at;
            Box::new(move |i: usize| {
                if has_nulls && col.is_null(i) {
                    return false;
                }
                matches!(cmp_at(i), Some(ord) if keep(ord))
            })
        }};
    }
    match (&col.data, lit) {
        // sql_cmp compares Int-vs-Int through f64 coercion too (not exact
        // i64 order) — match it bit-for-bit, 2^53-adjacent values included.
        (ColumnData::Int64(xs), Value::Int(b)) => {
            let b = *b as f64;
            pred!(move |i: usize| (xs[i] as f64).partial_cmp(&b))
        }
        (ColumnData::Int64(xs), Value::Float(b)) => {
            let b = *b;
            pred!(move |i: usize| (xs[i] as f64).partial_cmp(&b))
        }
        (ColumnData::Float64(xs), Value::Int(b)) => {
            let b = *b as f64;
            pred!(move |i: usize| xs[i].partial_cmp(&b))
        }
        (ColumnData::Float64(xs), Value::Float(b)) => {
            let b = *b;
            pred!(move |i: usize| xs[i].partial_cmp(&b))
        }
        (ColumnData::Str(ss), Value::Str(b)) => {
            let b = b.clone();
            pred!(move |i: usize| Some(ss[i].as_str().cmp(b.as_str())))
        }
        (ColumnData::Bool(bs), Value::Bool(b)) => {
            let b = *b;
            pred!(move |i: usize| Some(bs[i].cmp(&b)))
        }
        // Numeric coercion pairs involving booleans (sql_cmp coerces
        // booleans to 0/1 when the other side is numeric).
        (ColumnData::Int64(xs), Value::Bool(b)) => {
            let b = if *b { 1.0 } else { 0.0 };
            pred!(move |i: usize| (xs[i] as f64).partial_cmp(&b))
        }
        (ColumnData::Float64(xs), Value::Bool(b)) => {
            let b = if *b { 1.0 } else { 0.0 };
            pred!(move |i: usize| xs[i].partial_cmp(&b))
        }
        (ColumnData::Bool(bs), Value::Int(_) | Value::Float(_)) => {
            let b = lit.as_f64().expect("numeric literal");
            pred!(move |i: usize| (if bs[i] { 1.0 } else { 0.0 }).partial_cmp(&b))
        }
        (ColumnData::Mixed(vs), _) => {
            let lit = lit.clone();
            pred!(move |i: usize| vs[i].sql_cmp(&lit))
        }
        // Remaining cross-type pairs are incomparable under sql_cmp: the
        // comparison is NULL for every row, so nothing survives.
        _ => Box::new(|_| false),
    }
}

// ---- columnar hash-aggregate -------------------------------------------

/// Compiled pieces of a fast-path grouped query.
struct GroupedPlan {
    key_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    /// Per-aggregate argument column (`None` for `COUNT(*)`).
    agg_args: Vec<Option<usize>>,
    out_cols: Vec<ColMeta>,
    out_exprs: Vec<CompiledExpr>,
    having: Option<CompiledExpr>,
    order_plan: Vec<SortKey>,
}

/// Try the columnar grouped path. `None` means "not fast-path eligible"
/// (including compile errors — the row-engine fallback recompiles and
/// reports them identically); `Some(Err)` is a genuine execution error.
/// On success the grouped tail has already applied LIMIT/OFFSET.
#[allow(clippy::too_many_arguments)]
fn grouped_fast(
    ex: &mut Exec<'_>,
    q: &Query,
    s: &Select,
    cols: &[ColMeta],
    ctab: &ColumnarTable,
    sel: &[u32],
    par: Parallelism,
    topk: &mut bool,
) -> Option<Result<Relation>> {
    let order_by = &q.order_by;
    let group_exprs = ex.compile_group_exprs(s, cols).ok()?;
    let mut key_cols = Vec::with_capacity(group_exprs.len());
    for g in &group_exprs {
        match g {
            CompiledExpr::Column(i) => key_cols.push(*i),
            _ => return None,
        }
    }
    let mut gc = GroupCompiler {
        group_exprs: &group_exprs,
        aggs: Vec::new(),
    };
    let mut out_cols = Vec::new();
    let mut out_exprs = Vec::new();
    for item in &s.projection {
        match item {
            SelectItem::Expr { expr, alias } => {
                let compiled = gc.compile(ex, expr, cols).ok()?;
                out_cols.push(ColMeta::new(
                    None,
                    exec::output_name(expr, alias.as_deref()),
                ));
                out_exprs.push(compiled);
            }
            // Wildcards in aggregated queries are an error; let the row
            // engine report it.
            _ => return None,
        }
    }
    let having = match &s.having {
        Some(h) => Some(gc.compile(ex, h, cols).ok()?),
        None => None,
    };
    // Shared alias/ordinal resolution rule — the same helper the row
    // engine's grouped path uses, so the engines cannot drift.
    let order_plan =
        exec::plan_sort_keys_with(order_by, &out_cols, &mut |e| gc.compile(ex, e, cols)).ok()?;
    let mut agg_args = Vec::with_capacity(gc.aggs.len());
    for spec in &gc.aggs {
        match &spec.arg {
            None => agg_args.push(None),
            Some(CompiledExpr::Column(i)) => agg_args.push(Some(*i)),
            Some(_) => return None,
        }
    }
    let plan = GroupedPlan {
        key_cols,
        aggs: gc.aggs,
        agg_args,
        out_cols,
        out_exprs,
        having,
        order_plan,
    };
    Some(run_grouped(q, s, ctab, sel, plan, par, topk))
}

fn run_grouped(
    q: &Query,
    s: &Select,
    ctab: &ColumnarTable,
    sel: &[u32],
    plan: GroupedPlan,
    par: Parallelism,
    topk: &mut bool,
) -> Result<Relation> {
    if par.engaged(sel.len()) {
        return run_grouped_parallel(q, s, ctab, sel, plan, par, topk);
    }
    let (gids, mut groups) = assign_groups(ctab, &plan.key_cols, sel);
    // A grand aggregate over zero rows still yields one group.
    if plan.key_cols.is_empty() && groups.is_empty() {
        groups.push(Vec::new());
    }
    let ngroups = groups.len();

    let mut agg_vals: Vec<Vec<Value>> = Vec::with_capacity(plan.aggs.len());
    for (spec, arg) in plan.aggs.iter().zip(&plan.agg_args) {
        agg_vals.push(compute_agg(
            ctab,
            spec.func,
            *arg,
            sel,
            &gids,
            ngroups,
            par.fold_rows,
        )?);
    }
    grouped_tail(q, s, plan, GroupedRows::new(groups, agg_vals), topk)
}

/// Morsel-parallel grouped aggregation: every morsel of the selection
/// builds its own local group table (first-appearance order within the
/// morsel) and one [`AggPartial`] per aggregate — numeric aggregates
/// fold their fold-grid chunks into leaf sums right on the worker; the
/// coordinating thread then merges morsels **in morsel order** — local
/// groups map into a global table that reproduces the sequential
/// first-appearance order (all of morsel 0's rows precede morsel 1's),
/// and partial states merge per [`AggPartial::merge`]'s order-preserving
/// rules, after which a single fixed-shape tree combine (or loser-tree
/// run merge) finishes each group. `STDDEV` takes a second morsel pass
/// ([`parallel_stddev`]) once the mean pass has merged. Aggregate-stage
/// errors are reported for the lowest aggregate index first and, within
/// an aggregate, from the earliest morsel — exactly the sequential
/// engine's aggregate-major, row-order error.
fn run_grouped_parallel(
    q: &Query,
    s: &Select,
    ctab: &ColumnarTable,
    sel: &[u32],
    plan: GroupedPlan,
    par: Parallelism,
    topk: &mut bool,
) -> Result<Relation> {
    let fold_rows = par.fold_rows;
    let dense = sel.len() == ctab.len();
    // STDDEV's second (M2) pass revisits the data with per-group means
    // in hand; it needs each morsel's local group assignments.
    let need_gids = plan.aggs.iter().any(|spec| spec.func == AggFunc::Stddev);
    type MorselState = (Vec<Row>, Vec<u32>, Vec<Result<AggPartial>>);
    let morsels: Vec<MorselState> = morsel::run(sel.len(), par, |range| {
        let base = range.start;
        let chunk = &sel[range];
        let (gids, groups) = assign_groups(ctab, &plan.key_cols, chunk);
        let ngroups = groups.len();
        let partials = plan
            .aggs
            .iter()
            .zip(&plan.agg_args)
            .map(|(spec, arg)| {
                partial_agg(
                    ctab, spec.func, *arg, chunk, &gids, ngroups, base, fold_rows, dense,
                )
            })
            .collect();
        (groups, if need_gids { gids } else { Vec::new() }, partials)
    });

    // Merge morsel-local groups into the global first-appearance order.
    let naggs = plan.aggs.len();
    let mut map: HashMap<RowKey, u32> = HashMap::new();
    let mut groups: Vec<Row> = Vec::new();
    let mut gid_maps: Vec<Vec<u32>> = Vec::with_capacity(morsels.len());
    let mut morsel_gids: Vec<Vec<u32>> = Vec::with_capacity(morsels.len());
    let mut locals: Vec<Vec<Result<AggPartial>>> = Vec::with_capacity(morsels.len());
    for (local_groups, gids, partials) in morsels {
        let mut gmap = Vec::with_capacity(local_groups.len());
        for key_vals in local_groups {
            let gid = match map.entry(RowKey::from_values(&key_vals)) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    groups.push(key_vals);
                    *e.insert((groups.len() - 1) as u32)
                }
            };
            gmap.push(gid);
        }
        gid_maps.push(gmap);
        morsel_gids.push(gids);
        locals.push(partials);
    }
    // A grand aggregate over zero rows still yields one group.
    if plan.key_cols.is_empty() && groups.is_empty() {
        groups.push(Vec::new());
    }
    let ngroups = groups.len();

    // Merge partial states per aggregate, morsels in order.
    let mut global: Vec<AggPartial> = plan
        .aggs
        .iter()
        .zip(&plan.agg_args)
        .map(|(spec, arg)| {
            AggPartial::new_global(spec.func, ngroups, mixed_best(ctab, spec.func, *arg))
        })
        .collect();
    let mut first_err: Vec<Option<DbError>> = Vec::with_capacity(naggs);
    first_err.resize_with(naggs, || None);
    for (m, partials) in locals.into_iter().enumerate() {
        for (a, partial) in partials.into_iter().enumerate() {
            if first_err[a].is_some() {
                continue;
            }
            match partial {
                Ok(p) => global[a].merge(p, &gid_maps[m], plan.aggs[a].func),
                Err(e) => first_err[a] = Some(e),
            }
        }
    }
    if let Some(e) = first_err.into_iter().flatten().next() {
        return Err(e);
    }
    let mut agg_vals: Vec<Vec<Value>> = Vec::with_capacity(naggs);
    for (a, (g, spec)) in global.into_iter().zip(&plan.aggs).enumerate() {
        if spec.func == AggFunc::Stddev {
            let AggPartial::Sums(states) = g else {
                unreachable!("STDDEV mean pass always produces Sums partials")
            };
            agg_vals.push(parallel_stddev(
                ctab,
                plan.agg_args[a],
                sel,
                par,
                &morsel_gids,
                &gid_maps,
                states,
            )?);
        } else {
            agg_vals.push(g.finalize(spec.func));
        }
    }
    grouped_tail(q, s, plan, GroupedRows::new(groups, agg_vals), topk)
}

/// Second pass of the morsel-parallel `STDDEV`: with per-group means
/// fixed by the merged mean pass, every morsel folds its groups' squared
/// deviations on the same fold grid (global group ids this time), and
/// the per-morsel leaf lists concatenate in morsel order — exactly the
/// sequential [`aggregate::stddev_tree`], bit for bit.
fn parallel_stddev(
    ctab: &ColumnarTable,
    arg: Option<usize>,
    sel: &[u32],
    par: Parallelism,
    morsel_gids: &[Vec<u32>],
    gid_maps: &[Vec<u32>],
    states: Vec<FoldState>,
) -> Result<Vec<Value>> {
    let col = match arg {
        Some(c) => &ctab.columns[c],
        None => {
            return Err(DbError::InvalidAggregate(
                "Stddev requires an argument".to_string(),
            ))
        }
    };
    let ngroups = states.len();
    let counts: Vec<u64> = states.iter().map(FoldState::count).collect();
    let means: Vec<f64> = states
        .into_iter()
        .zip(&counts)
        .map(|(s, &n)| if n == 0 { 0.0 } else { s.into_sum() / n as f64 })
        .collect();
    let step = par.fold_rows.max(1);
    let sched = par.sched_rows(sel.len());
    let m2s: Vec<Vec<FoldState>> =
        morsel::try_run(sel.len(), par, |range| -> Result<Vec<FoldState>> {
            let m = range.start / sched;
            let gids = &morsel_gids[m];
            let gmap = &gid_maps[m];
            let mut accs: Vec<FoldAcc> = vec![FoldAcc::new(); ngroups];
            for (k, &i) in sel[range.clone()].iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let g = gmap[gids[k] as usize] as usize;
                let x = numeric_at(col, idx, AggFunc::Stddev)?;
                accs[g].push((range.start + k) / step, (x - means[g]).powi(2));
            }
            Ok(accs.into_iter().map(FoldAcc::finish).collect::<Vec<_>>())
        })?;
    let mut m2: Vec<FoldState> = vec![FoldState::default(); ngroups];
    for morsel_states in m2s {
        for (g, state) in morsel_states.into_iter().enumerate() {
            m2[g].append(state);
        }
    }
    Ok(m2
        .into_iter()
        .zip(&counts)
        .map(|(state, &n)| {
            if n < 2 {
                Value::Null
            } else {
                Value::Float((state.into_sum() / (n as f64 - 1.0)).sqrt())
            }
        })
        .collect())
}

/// Post-aggregation tail shared by the sequential and parallel grouped
/// operators — identical to the row engine's `select_grouped` followed
/// by the LIMIT/OFFSET slice: build post-group rows
/// `[key values..., aggregate values...]` (transposed out of the
/// column-major [`GroupedRows`] without cloning aggregate values), filter
/// HAVING, project, then sort **group indices** — `ORDER BY … LIMIT k`
/// selects the top `offset + k` groups with a bounded heap instead of
/// sorting every group ([`exec::finish_select_sliced`]).
fn grouped_tail(
    q: &Query,
    s: &Select,
    plan: GroupedPlan,
    grouped: GroupedRows,
    topk: &mut bool,
) -> Result<Relation> {
    let order_by = &q.order_by;
    let ngroups = grouped.len();
    let mut out_rows = Vec::with_capacity(ngroups);
    let mut key_rows = if order_by.is_empty() {
        None
    } else {
        Some(Vec::with_capacity(ngroups))
    };
    for group_row in grouped.into_rows() {
        if let Some(h) = &plan.having {
            if !h.eval_bool(&group_row)? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(plan.out_exprs.len());
        for e in &plan.out_exprs {
            out.push(e.eval(&group_row)?);
        }
        if let Some(keys) = &mut key_rows {
            keys.push(exec::eval_sort_keys(&plan.order_plan, &out, &group_row)?);
        }
        out_rows.push(out);
    }
    Ok(exec::finish_select_sliced(
        Relation::new(plan.out_cols, out_rows),
        key_rows,
        order_by,
        s.distinct,
        q.limit,
        q.offset,
        topk,
    ))
}

/// Assign a group id to every selected row (ids in first-appearance
/// order, like the row engine) and collect each group's key values.
/// Integer and string single-column keys get dedicated hash paths; the
/// general case goes through [`RowKey`], which unifies `1` and `1.0`
/// exactly like the row engine does.
fn assign_groups(ctab: &ColumnarTable, key_cols: &[usize], sel: &[u32]) -> (Vec<u32>, Vec<Row>) {
    let mut gids = Vec::with_capacity(sel.len());
    let mut groups: Vec<Row> = Vec::new();
    if key_cols.is_empty() {
        if !sel.is_empty() {
            gids.resize(sel.len(), 0);
            groups.push(Vec::new());
        }
        return (gids, groups);
    }
    if let [c] = key_cols {
        let col = &ctab.columns[*c];
        match &col.data {
            ColumnData::Int64(xs) => {
                let mut map: HashMap<i64, u32> = HashMap::new();
                let mut null_gid: Option<u32> = None;
                for &i in sel {
                    let idx = i as usize;
                    let g = if col.is_null(idx) {
                        *null_gid.get_or_insert_with(|| {
                            groups.push(vec![Value::Null]);
                            (groups.len() - 1) as u32
                        })
                    } else {
                        match map.entry(xs[idx]) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                groups.push(vec![Value::Int(xs[idx])]);
                                *e.insert((groups.len() - 1) as u32)
                            }
                        }
                    };
                    gids.push(g);
                }
                return (gids, groups);
            }
            ColumnData::Str(ss) => {
                let mut map: HashMap<&str, u32> = HashMap::new();
                let mut null_gid: Option<u32> = None;
                for &i in sel {
                    let idx = i as usize;
                    let g = if col.is_null(idx) {
                        *null_gid.get_or_insert_with(|| {
                            groups.push(vec![Value::Null]);
                            (groups.len() - 1) as u32
                        })
                    } else {
                        match map.entry(ss[idx].as_str()) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                groups.push(vec![Value::Str(ss[idx].clone())]);
                                *e.insert((groups.len() - 1) as u32)
                            }
                        }
                    };
                    gids.push(g);
                }
                return (gids, groups);
            }
            _ => {}
        }
    }
    let mut map: HashMap<RowKey, u32> = HashMap::new();
    for &i in sel {
        let idx = i as usize;
        let key_vals: Row = key_cols
            .iter()
            .map(|&c| ctab.columns[c].value(idx))
            .collect();
        let g = match map.entry(RowKey::from_values(&key_vals)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                groups.push(key_vals);
                *e.insert((groups.len() - 1) as u32)
            }
        };
        gids.push(g);
    }
    (gids, groups)
}

/// Numeric view of a non-null column slot, with the row engine's exact
/// type error on non-numeric values.
fn numeric_at(col: &Column, idx: usize, func: AggFunc) -> Result<f64> {
    let type_err = |found: &str| DbError::TypeMismatch {
        context: format!("{func:?} argument"),
        expected: "number".to_string(),
        found: found.to_string(),
    };
    match &col.data {
        ColumnData::Int64(xs) => Ok(xs[idx] as f64),
        ColumnData::Float64(xs) => Ok(xs[idx]),
        ColumnData::Bool(bs) => Ok(if bs[idx] { 1.0 } else { 0.0 }),
        ColumnData::Str(_) => Err(type_err("string")),
        ColumnData::Mixed(vs) => vs[idx]
            .as_f64()
            .ok_or_else(|| type_err(vs[idx].type_name())),
    }
}

/// Tree-fold a contiguous fully-selected slice of a no-null numeric
/// column with the dense SIMD leaf kernels — the fast path for grand
/// aggregates (and single-group morsels) where fold chunks map to
/// contiguous column slices. `range.start` must be fold-chunk-aligned
/// (scheduling morsels are whole multiples of `fold_rows`). Returns
/// `None` when the column shape doesn't admit the dense kernel.
fn dense_fold(col: &Column, range: std::ops::Range<usize>, fold_rows: usize) -> Option<FoldState> {
    if col.nulls.any() {
        return None;
    }
    let step = fold_rows.max(1);
    let mut acc = FoldAcc::new();
    match &col.data {
        ColumnData::Float64(xs) => {
            for leaf in xs[range].chunks(step) {
                acc.push_leaf(aggregate::leaf_sum(leaf), leaf.len() as u64);
            }
        }
        ColumnData::Int64(xs) => {
            for leaf in xs[range].chunks(step) {
                acc.push_leaf(aggregate::leaf_sum_ints(leaf), leaf.len() as u64);
            }
        }
        _ => return None,
    }
    Some(acc.finish())
}

/// Finish a SUM or AVG from one group's fold state.
fn finish_sum_avg(func: AggFunc, state: FoldState) -> Value {
    if state.count() == 0 {
        return Value::Null;
    }
    let n = state.count() as f64;
    let sum = state.into_sum();
    match func {
        AggFunc::Sum => Value::Float(sum),
        AggFunc::Avg => Value::Float(sum / n),
        _ => unreachable!("fold state finalized for {func:?}"),
    }
}

/// Evaluate one aggregate over all groups in a single columnar pass.
/// Floating-point aggregates fold through the fixed-shape reduction tree
/// on the `fold_rows` grid over selection positions — the same function
/// the row engine and the parallel operator evaluate, bit for bit.
fn compute_agg(
    ctab: &ColumnarTable,
    func: AggFunc,
    arg: Option<usize>,
    sel: &[u32],
    gids: &[u32],
    ngroups: usize,
    fold_rows: usize,
) -> Result<Vec<Value>> {
    if func == AggFunc::CountStar {
        let mut counts = vec![0i64; ngroups];
        for &g in gids {
            counts[g as usize] += 1;
        }
        return Ok(counts.into_iter().map(Value::Int).collect());
    }
    let col = match arg {
        Some(c) => &ctab.columns[c],
        None => {
            return Err(DbError::InvalidAggregate(format!(
                "{func:?} requires an argument"
            )))
        }
    };
    match func {
        AggFunc::CountStar => unreachable!("handled above"),
        AggFunc::Count => {
            let mut counts = vec![0i64; ngroups];
            if col.nulls.any() {
                for (k, &i) in sel.iter().enumerate() {
                    if !col.is_null(i as usize) {
                        counts[gids[k] as usize] += 1;
                    }
                }
            } else {
                for &g in gids {
                    counts[g as usize] += 1;
                }
            }
            Ok(counts.into_iter().map(Value::Int).collect())
        }
        AggFunc::CountDistinct => {
            let mut sets: Vec<HashSet<ValueKey>> = vec![HashSet::new(); ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                sets[gids[k] as usize].insert(value_key_at(col, idx));
            }
            Ok(sets
                .into_iter()
                .map(|s| Value::Int(s.len() as i64))
                .collect())
        }
        AggFunc::Sum | AggFunc::Avg => {
            // Dense kernel fast path: one group over the full table —
            // fold chunks are contiguous column slices, so the SIMD
            // leaf kernels apply directly.
            if ngroups == 1 && sel.len() == ctab.len() {
                if let Some(state) = dense_fold(col, 0..sel.len(), fold_rows) {
                    return Ok(vec![finish_sum_avg(func, state)]);
                }
            }
            let mut accs: Vec<FoldAcc> = vec![FoldAcc::new(); ngroups];
            let step = fold_rows.max(1);
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                accs[gids[k] as usize].push(k / step, numeric_at(col, idx, func)?);
            }
            Ok(accs
                .into_iter()
                .map(|acc| finish_sum_avg(func, acc.finish()))
                .collect())
        }
        AggFunc::Min | AggFunc::Max => Ok(min_max(col, func, sel, gids, ngroups)),
        AggFunc::Median => {
            let mut per: Vec<Vec<f64>> = vec![Vec::new(); ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                per[gids[k] as usize].push(numeric_at(col, idx, func)?);
            }
            Ok(per.into_iter().map(aggregate::median_of).collect())
        }
        AggFunc::Stddev => {
            let mut per: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ngroups];
            let step = fold_rows.max(1);
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                per[gids[k] as usize].push((k / step, numeric_at(col, idx, func)?));
            }
            Ok(per
                .into_iter()
                .map(|pairs| aggregate::stddev_tree(&pairs))
                .collect())
        }
    }
}

/// Hashable grouping/distinct key of a non-null column slot, matching
/// `ValueKey::from(&col.value(idx))` without materializing the `Value`.
fn value_key_at(col: &Column, idx: usize) -> ValueKey {
    match &col.data {
        ColumnData::Int64(xs) => ValueKey::Int(xs[idx]),
        ColumnData::Float64(xs) => ValueKey::from(&Value::Float(xs[idx])),
        ColumnData::Bool(bs) => ValueKey::Bool(bs[idx]),
        ColumnData::Str(ss) => ValueKey::Str(ss[idx].clone()),
        ColumnData::Mixed(vs) => ValueKey::from(&vs[idx]),
    }
}

/// Compute one aggregate's [`AggPartial`] over one morsel of the
/// selection (morsel-local group ids). Mirrors [`compute_agg`] exactly:
/// `SUM`/`AVG`/`STDDEV` fold their fold-grid chunks into leaf sums right
/// here on the worker (`base` is the morsel's absolute selection offset,
/// so chunk ids are global and morsel boundaries — always chunk-aligned
/// — never split a leaf), and `MEDIAN` sorts its run locally; only the
/// final tree combine / run merge is left for after the morsel-order
/// merge. `dense` says the selection is the full table (identity), which
/// unlocks the contiguous SIMD kernel for single-group morsels. Type
/// errors surface from the same rows, walked in the same order.
#[allow(clippy::too_many_arguments)]
fn partial_agg(
    ctab: &ColumnarTable,
    func: AggFunc,
    arg: Option<usize>,
    sel: &[u32],
    gids: &[u32],
    ngroups: usize,
    base: usize,
    fold_rows: usize,
    dense: bool,
) -> Result<AggPartial> {
    if func == AggFunc::CountStar {
        let mut counts = vec![0i64; ngroups];
        for &g in gids {
            counts[g as usize] += 1;
        }
        return Ok(AggPartial::Counts(counts));
    }
    let col = match arg {
        Some(c) => &ctab.columns[c],
        None => {
            return Err(DbError::InvalidAggregate(format!(
                "{func:?} requires an argument"
            )))
        }
    };
    match func {
        AggFunc::CountStar => unreachable!("handled above"),
        AggFunc::Count => {
            let mut counts = vec![0i64; ngroups];
            if col.nulls.any() {
                for (k, &i) in sel.iter().enumerate() {
                    if !col.is_null(i as usize) {
                        counts[gids[k] as usize] += 1;
                    }
                }
            } else {
                for &g in gids {
                    counts[g as usize] += 1;
                }
            }
            Ok(AggPartial::Counts(counts))
        }
        AggFunc::CountDistinct => {
            let mut sets: Vec<HashSet<ValueKey>> = vec![HashSet::new(); ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                sets[gids[k] as usize].insert(value_key_at(col, idx));
            }
            Ok(AggPartial::Distinct(sets))
        }
        AggFunc::Sum | AggFunc::Avg | AggFunc::Stddev => {
            // Single-group morsel over the identity selection: all of
            // this morsel's rows belong to one group, so its leaves are
            // contiguous column slices — the SIMD kernel path.
            if ngroups == 1 && dense {
                if let Some(state) = dense_fold(col, base..base + sel.len(), fold_rows) {
                    return Ok(AggPartial::Sums(vec![state]));
                }
            }
            let mut accs: Vec<FoldAcc> = vec![FoldAcc::new(); ngroups];
            let step = fold_rows.max(1);
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                accs[gids[k] as usize].push((base + k) / step, numeric_at(col, idx, func)?);
            }
            Ok(AggPartial::Sums(
                accs.into_iter().map(FoldAcc::finish).collect(),
            ))
        }
        AggFunc::Median => {
            let mut per: Vec<Vec<f64>> = vec![Vec::new(); ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                per[gids[k] as usize].push(numeric_at(col, idx, func)?);
            }
            // Sort each group's run here on the worker; the coordinator
            // only loser-tree-merges the pre-sorted runs.
            Ok(AggPartial::Runs(
                per.into_iter()
                    .map(|mut run| {
                        run.sort_by(f64::total_cmp);
                        vec![run]
                    })
                    .collect(),
            ))
        }
        AggFunc::Min | AggFunc::Max => {
            // Mixed columns need value-collecting partials: total_cmp is
            // not transitive across physical types, so per-morsel winners
            // cannot be merged — see `AggPartial::BestValues`.
            if let ColumnData::Mixed(vs) = &col.data {
                let mut per: Vec<Vec<Value>> = vec![Vec::new(); ngroups];
                for (k, &i) in sel.iter().enumerate() {
                    let idx = i as usize;
                    if col.is_null(idx) {
                        continue;
                    }
                    per[gids[k] as usize].push(vs[idx].clone());
                }
                return Ok(AggPartial::BestValues(per));
            }
            Ok(AggPartial::Best(min_max(col, func, sel, gids, ngroups)))
        }
    }
}

/// Whether `partial_agg` produces the value-collecting `MIN`/`MAX` shape
/// for this aggregate (Mixed argument column) — the global accumulator
/// must be constructed to match.
fn mixed_best(ctab: &ColumnarTable, func: AggFunc, arg: Option<usize>) -> bool {
    matches!(func, AggFunc::Min | AggFunc::Max)
        && arg.is_some_and(|c| matches!(ctab.columns[c].data, ColumnData::Mixed(_)))
}

/// MIN/MAX with the row engine's tie-breaking (first occurrence wins on
/// `total_cmp` equality), specialized per column representation.
fn min_max(col: &Column, func: AggFunc, sel: &[u32], gids: &[u32], ngroups: usize) -> Vec<Value> {
    let min = func == AggFunc::Min;
    let adopt = |ord: Ordering| match ord {
        Ordering::Less => min,
        Ordering::Greater => !min,
        Ordering::Equal => false,
    };
    match &col.data {
        ColumnData::Int64(xs) => {
            let mut best: Vec<Option<i64>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(xs[idx]),
                    Some(cur) => {
                        if adopt(xs[idx].cmp(cur)) {
                            *cur = xs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Value::Int))
                .collect()
        }
        ColumnData::Float64(xs) => {
            let mut best: Vec<Option<f64>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(xs[idx]),
                    Some(cur) => {
                        if adopt(xs[idx].total_cmp(cur)) {
                            *cur = xs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Value::Float))
                .collect()
        }
        ColumnData::Bool(bs) => {
            let mut best: Vec<Option<bool>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(bs[idx]),
                    Some(cur) => {
                        if adopt(bs[idx].cmp(cur)) {
                            *cur = bs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Value::Bool))
                .collect()
        }
        ColumnData::Str(ss) => {
            // Track the best row index; clone the winning string once.
            let mut best: Vec<Option<usize>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(idx),
                    Some(cur) => {
                        if adopt(ss[idx].cmp(&ss[*cur])) {
                            *cur = idx;
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, |i| Value::Str(ss[i].clone())))
                .collect()
        }
        ColumnData::Mixed(vs) => {
            let mut best: Vec<Option<&Value>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(&vs[idx]),
                    Some(cur) => {
                        if adopt(vs[idx].total_cmp(cur)) {
                            *cur = &vs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Clone::clone))
                .collect()
        }
    }
}
