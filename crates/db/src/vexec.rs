//! Vectorized (columnar, batch-at-a-time) execution engine.
//!
//! Instead of interpreting one `Vec<Value>` row at a time, this engine
//! scans the table's lazily built [`ColumnarTable`] projection: WHERE
//! predicates run as **comparison kernels** over whole typed column
//! vectors, narrowing a *selection vector* of surviving row indices, and
//! GROUP BY / aggregate blocks run as a **columnar hash-aggregate** that
//! assigns group ids from key columns and accumulates each aggregate in a
//! single pass — no intermediate row materialization at all on the hot
//! COUNT/SUM/AVG shapes that dominate the Uber and TPC-H workloads.
//!
//! # Routing contract
//!
//! [`try_execute`] accepts a query iff it is a single SELECT block over
//! one base table: no CTEs, no set operations, no joins, no derived
//! tables, no table-less SELECT. Everything else returns `None` and runs
//! on the row interpreter ([`crate::exec`]). Within an accepted query,
//! sub-shapes the columnar operators don't cover degrade gracefully
//! rather than bailing out:
//!
//! - WHERE predicates containing any conjunct without a kernel (e.g.
//!   arbitrary CASE or arithmetic) are evaluated whole by the shared
//!   scalar interpreter over scratch rows gathered from only the
//!   referenced columns, preserving short-circuit and error semantics;
//! - grouped queries whose group keys or aggregate arguments are not
//!   plain columns fall back to gathering the filtered rows and running
//!   the row engine's grouping code on them (keeping the filter win);
//! - projection, HAVING, ORDER BY and DISTINCT always reuse the row
//!   engine's compiled expressions and tail logic verbatim.
//!
//! **Result identity:** both engines compile expressions with the same
//! compiler, accumulate floating-point aggregates in the same row order,
//! and share the ORDER BY / DISTINCT / LIMIT tail, so any query that
//! executes without error returns a byte-identical [`ResultSet`] on
//! either engine — the DP layers above (sensitivity analysis, noise
//! seeding) cannot observe which engine ran. The one permitted
//! divergence: *aggregate-stage* type errors (e.g. `SUM` over a column
//! mixing strings into numbers) may be reported from a different row,
//! because the columnar accumulators visit rows in table order rather
//! than group order; whether a query errors is still identical.

use crate::aggregate::{self, AggFunc, AggSpec};
use crate::column::{Column, ColumnData, ColumnarTable};
use crate::database::Database;
use crate::error::{DbError, Result};
use crate::exec::{self, Exec, GroupCompiler, SortKey};
use crate::expr::{like_match, CompiledExpr};
use crate::plan::{ColMeta, Relation, ResultSet};
use crate::table::{Row, Table};
use crate::value::{RowKey, Value, ValueKey};
use flex_sql::{BinaryOperator, OrderByItem, Query, Select, SelectItem, SetExpr, TableRef};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Execute `q` on the vectorized engine if it is vectorizable, else
/// `None` (the caller falls back to the row interpreter).
pub fn try_execute(db: &Database, q: &Query) -> Option<Result<ResultSet>> {
    if !q.ctes.is_empty() {
        return None;
    }
    let s = match &q.body {
        SetExpr::Select(s) => s,
        SetExpr::SetOp { .. } => return None,
    };
    let (name, alias) = match s.from.as_ref()? {
        TableRef::Table { name, alias } => (name, alias),
        _ => return None,
    };
    // Unknown tables fall back so the row engine reports the error.
    let table = db.table(name)?;
    let qualifier = alias.as_deref().unwrap_or(name);
    Some(run(db, q, s, table, qualifier))
}

fn run(db: &Database, q: &Query, s: &Select, table: &Table, qualifier: &str) -> Result<ResultSet> {
    let cols: Vec<ColMeta> = table
        .schema
        .columns
        .iter()
        .map(|c| ColMeta::new(Some(qualifier.to_string()), c.name.clone()))
        .collect();
    let ctab = table.columnar().clone();
    let mut ex = Exec::new(db);

    // WHERE → selection vector.
    let all: Vec<u32> = (0..ctab.len() as u32).collect();
    let sel = match &s.selection {
        Some(pred) => {
            let compiled = ex.compile_scalar(pred, &cols)?;
            filter(&ctab, &compiled, all)?
        }
        None => all,
    };

    let mut rel = if Exec::has_aggregates(s) {
        match grouped_fast(&mut ex, s, &cols, &ctab, &sel, &q.order_by) {
            Some(result) => result?,
            // Group keys or aggregate args are not plain columns: gather
            // the filtered rows and run the row engine's grouping on them.
            None => {
                let input = Relation::new(cols, gather_rows(&ctab, &sel));
                ex.select_after_where(s, input, &q.order_by)?
            }
        }
    } else {
        // Plain projection: the filter ran columnar, the rest is the row
        // engine's projection over only the surviving rows.
        let input = Relation::new(cols, gather_rows(&ctab, &sel));
        ex.select_after_where(s, input, &q.order_by)?
    };
    exec::apply_limit_offset(&mut rel, q.limit, q.offset);
    Ok(ResultSet::from(rel))
}

/// Materialize the selected rows (exact `Value` reconstruction).
fn gather_rows(ctab: &ColumnarTable, sel: &[u32]) -> Vec<Row> {
    sel.iter().map(|&i| ctab.row(i as usize)).collect()
}

// ---- columnar filtering -------------------------------------------------

/// Narrow `sel` to the rows where `pred` is TRUE (SQL filter semantics:
/// NULL drops).
///
/// When every top-level AND conjunct has a kernel, conjuncts narrow the
/// selection one at a time, so later conjuncts only touch surviving
/// rows. That reordering is only sound because kernels are infallible:
/// the row engine keeps evaluating later conjuncts on rows where an
/// earlier one was NULL (AND short-circuits on FALSE only), so skipping
/// those rows may skip a runtime *error* the row engine would report.
/// Any conjunct without a kernel therefore sends the whole predicate to
/// the scalar interpreter, which preserves short-circuit and error
/// behavior exactly.
fn filter(ctab: &ColumnarTable, pred: &CompiledExpr, mut sel: Vec<u32>) -> Result<Vec<u32>> {
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    if !conjuncts.iter().all(|c| kernelizable(ctab, c)) {
        return generic_filter(ctab, pred, sel);
    }
    for c in conjuncts {
        if sel.is_empty() {
            break;
        }
        sel = apply_kernel(ctab, c, sel);
    }
    Ok(sel)
}

/// Does this conjunct have an infallible columnar kernel?
fn kernelizable(ctab: &ColumnarTable, e: &CompiledExpr) -> bool {
    match e {
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => matches!(
            (&**left, &**right),
            (CompiledExpr::Column(_), CompiledExpr::Literal(_))
                | (CompiledExpr::Literal(_), CompiledExpr::Column(_))
        ),
        CompiledExpr::IsNull { expr, .. } => matches!(&**expr, CompiledExpr::Column(_)),
        // LIKE can only error on non-string values, so the kernel (and
        // its infallibility) requires an all-string column.
        CompiledExpr::Like { expr, pattern, .. } => match (&**expr, &**pattern) {
            (CompiledExpr::Column(c), CompiledExpr::Literal(Value::Str(_))) => {
                matches!(ctab.columns[*c].data, ColumnData::Str(_))
            }
            _ => false,
        },
        _ => false,
    }
}

fn collect_conjuncts<'e>(e: &'e CompiledExpr, out: &mut Vec<&'e CompiledExpr>) {
    if let CompiledExpr::Binary {
        op: BinaryOperator::And,
        left,
        right,
    } = e
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Run one [`kernelizable`] conjunct over the selection.
fn apply_kernel(ctab: &ColumnarTable, e: &CompiledExpr, sel: Vec<u32>) -> Vec<u32> {
    match e {
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => {
            if let (CompiledExpr::Column(c), CompiledExpr::Literal(v)) = (&**left, &**right) {
                return cmp_kernel(&ctab.columns[*c], *op, v, &sel);
            }
            if let (CompiledExpr::Literal(v), CompiledExpr::Column(c)) = (&**left, &**right) {
                return cmp_kernel(&ctab.columns[*c], flip(*op), v, &sel);
            }
            unreachable!("kernelizable comparison without column/literal shape")
        }
        CompiledExpr::IsNull { expr, negated } => {
            let CompiledExpr::Column(c) = &**expr else {
                unreachable!("kernelizable IS NULL without a column")
            };
            let col = &ctab.columns[*c];
            sel.into_iter()
                .filter(|&i| col.is_null(i as usize) != *negated)
                .collect()
        }
        CompiledExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let (CompiledExpr::Column(c), CompiledExpr::Literal(Value::Str(p))) =
                (&**expr, &**pattern)
            else {
                unreachable!("kernelizable LIKE without column/literal shape")
            };
            let col = &ctab.columns[*c];
            let ColumnData::Str(ss) = &col.data else {
                unreachable!("kernelizable LIKE over a non-string column")
            };
            sel.into_iter()
                .filter(|&i| {
                    let i = i as usize;
                    !col.is_null(i) && (like_match(&ss[i], p) != *negated)
                })
                .collect()
        }
        _ => unreachable!("apply_kernel called on a non-kernel conjunct"),
    }
}

/// Fallback conjunct evaluation: scalar-interpret `e` per surviving row,
/// gathering only the columns it references into a scratch row. Produces
/// exactly the row engine's values (shared evaluator), including errors.
fn generic_filter(ctab: &ColumnarTable, e: &CompiledExpr, sel: Vec<u32>) -> Result<Vec<u32>> {
    let mut refs = Vec::new();
    e.for_each_column(&mut |i| refs.push(i));
    refs.sort_unstable();
    refs.dedup();
    let mut scratch: Row = vec![Value::Null; ctab.columns.len()];
    let mut out = Vec::with_capacity(sel.len());
    for i in sel {
        let idx = i as usize;
        for &c in &refs {
            scratch[c] = ctab.columns[c].value(idx);
        }
        if e.eval_bool(&scratch)? {
            out.push(i);
        }
    }
    Ok(out)
}

/// Mirror a comparison so `lit op col` becomes `col op' lit`.
fn flip(op: BinaryOperator) -> BinaryOperator {
    match op {
        BinaryOperator::Lt => BinaryOperator::Gt,
        BinaryOperator::Gt => BinaryOperator::Lt,
        BinaryOperator::LtEq => BinaryOperator::GtEq,
        BinaryOperator::GtEq => BinaryOperator::LtEq,
        other => other,
    }
}

/// `column op literal` over a selection vector, with the exact semantics
/// of [`Value::sql_cmp`]: NULLs and incomparable type pairs never match.
fn cmp_kernel(col: &Column, op: BinaryOperator, lit: &Value, sel: &[u32]) -> Vec<u32> {
    if lit.is_null() {
        return Vec::new();
    }
    let keep = |ord: Ordering| match op {
        BinaryOperator::Eq => ord == Ordering::Equal,
        BinaryOperator::NotEq => ord != Ordering::Equal,
        BinaryOperator::Lt => ord == Ordering::Less,
        BinaryOperator::LtEq => ord != Ordering::Greater,
        BinaryOperator::Gt => ord == Ordering::Greater,
        BinaryOperator::GtEq => ord != Ordering::Less,
        _ => unreachable!("comparison op"),
    };
    let has_nulls = col.nulls.any();
    let filt = |cmp_at: &dyn Fn(usize) -> Option<Ordering>| -> Vec<u32> {
        sel.iter()
            .copied()
            .filter(|&i| {
                let i = i as usize;
                if has_nulls && col.is_null(i) {
                    return false;
                }
                matches!(cmp_at(i), Some(ord) if keep(ord))
            })
            .collect()
    };
    match (&col.data, lit) {
        // sql_cmp compares Int-vs-Int through f64 coercion too (not exact
        // i64 order) — match it bit-for-bit, 2^53-adjacent values included.
        (ColumnData::Int64(xs), Value::Int(b)) => {
            let b = *b as f64;
            filt(&|i| (xs[i] as f64).partial_cmp(&b))
        }
        (ColumnData::Int64(xs), Value::Float(b)) => filt(&|i| (xs[i] as f64).partial_cmp(b)),
        (ColumnData::Float64(xs), Value::Int(b)) => {
            let b = *b as f64;
            filt(&|i| xs[i].partial_cmp(&b))
        }
        (ColumnData::Float64(xs), Value::Float(b)) => filt(&|i| xs[i].partial_cmp(b)),
        (ColumnData::Str(ss), Value::Str(b)) => filt(&|i| Some(ss[i].as_str().cmp(b.as_str()))),
        (ColumnData::Bool(bs), Value::Bool(b)) => filt(&|i| Some(bs[i].cmp(b))),
        // Numeric coercion pairs involving booleans (sql_cmp coerces
        // booleans to 0/1 when the other side is numeric).
        (ColumnData::Int64(xs), Value::Bool(b)) => {
            let b = if *b { 1.0 } else { 0.0 };
            filt(&|i| (xs[i] as f64).partial_cmp(&b))
        }
        (ColumnData::Float64(xs), Value::Bool(b)) => {
            let b = if *b { 1.0 } else { 0.0 };
            filt(&|i| xs[i].partial_cmp(&b))
        }
        (ColumnData::Bool(bs), Value::Int(_) | Value::Float(_)) => {
            let b = lit.as_f64().expect("numeric literal");
            filt(&|i| (if bs[i] { 1.0 } else { 0.0 }).partial_cmp(&b))
        }
        (ColumnData::Mixed(vs), _) => filt(&|i| vs[i].sql_cmp(lit)),
        // Remaining cross-type pairs are incomparable under sql_cmp: the
        // comparison is NULL for every row, so nothing survives.
        _ => Vec::new(),
    }
}

// ---- columnar hash-aggregate -------------------------------------------

/// Compiled pieces of a fast-path grouped query.
struct GroupedPlan {
    key_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    /// Per-aggregate argument column (`None` for `COUNT(*)`).
    agg_args: Vec<Option<usize>>,
    out_cols: Vec<ColMeta>,
    out_exprs: Vec<CompiledExpr>,
    having: Option<CompiledExpr>,
    order_plan: Vec<SortKey>,
}

/// Try the columnar grouped path. `None` means "not fast-path eligible"
/// (including compile errors — the row-engine fallback recompiles and
/// reports them identically); `Some(Err)` is a genuine execution error.
fn grouped_fast(
    ex: &mut Exec<'_>,
    s: &Select,
    cols: &[ColMeta],
    ctab: &ColumnarTable,
    sel: &[u32],
    order_by: &[OrderByItem],
) -> Option<Result<Relation>> {
    let group_exprs = ex.compile_group_exprs(s, cols).ok()?;
    let mut key_cols = Vec::with_capacity(group_exprs.len());
    for g in &group_exprs {
        match g {
            CompiledExpr::Column(i) => key_cols.push(*i),
            _ => return None,
        }
    }
    let mut gc = GroupCompiler {
        group_exprs: &group_exprs,
        aggs: Vec::new(),
    };
    let mut out_cols = Vec::new();
    let mut out_exprs = Vec::new();
    for item in &s.projection {
        match item {
            SelectItem::Expr { expr, alias } => {
                let compiled = gc.compile(ex, expr, cols).ok()?;
                out_cols.push(ColMeta::new(
                    None,
                    exec::output_name(expr, alias.as_deref()),
                ));
                out_exprs.push(compiled);
            }
            // Wildcards in aggregated queries are an error; let the row
            // engine report it.
            _ => return None,
        }
    }
    let having = match &s.having {
        Some(h) => Some(gc.compile(ex, h, cols).ok()?),
        None => None,
    };
    let mut order_plan = Vec::with_capacity(order_by.len());
    for item in order_by {
        let key = match exec::sort_key_by_output(&item.expr, &out_cols).ok()? {
            Some(pos) => SortKey::Output(pos),
            None => SortKey::Source(gc.compile(ex, &item.expr, cols).ok()?),
        };
        order_plan.push(key);
    }
    let mut agg_args = Vec::with_capacity(gc.aggs.len());
    for spec in &gc.aggs {
        match &spec.arg {
            None => agg_args.push(None),
            Some(CompiledExpr::Column(i)) => agg_args.push(Some(*i)),
            Some(_) => return None,
        }
    }
    let plan = GroupedPlan {
        key_cols,
        aggs: gc.aggs,
        agg_args,
        out_cols,
        out_exprs,
        having,
        order_plan,
    };
    Some(run_grouped(s, ctab, sel, order_by, plan))
}

fn run_grouped(
    s: &Select,
    ctab: &ColumnarTable,
    sel: &[u32],
    order_by: &[OrderByItem],
    plan: GroupedPlan,
) -> Result<Relation> {
    let (gids, mut groups) = assign_groups(ctab, &plan.key_cols, sel);
    // A grand aggregate over zero rows still yields one group.
    if plan.key_cols.is_empty() && groups.is_empty() {
        groups.push(Vec::new());
    }
    let ngroups = groups.len();

    let mut agg_vals: Vec<Vec<Value>> = Vec::with_capacity(plan.aggs.len());
    for (spec, arg) in plan.aggs.iter().zip(&plan.agg_args) {
        agg_vals.push(compute_agg(ctab, spec.func, *arg, sel, &gids, ngroups)?);
    }

    // Tail identical to the row engine's select_grouped: build post-group
    // rows `[key values..., aggregate values...]`, filter HAVING, project.
    let mut out_rows = Vec::with_capacity(ngroups);
    let mut key_rows = if order_by.is_empty() {
        None
    } else {
        Some(Vec::with_capacity(ngroups))
    };
    for (g, key_vals) in groups.into_iter().enumerate() {
        let mut group_row = key_vals;
        for a in &agg_vals {
            group_row.push(a[g].clone());
        }
        if let Some(h) = &plan.having {
            if !h.eval_bool(&group_row)? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(plan.out_exprs.len());
        for e in &plan.out_exprs {
            out.push(e.eval(&group_row)?);
        }
        if let Some(keys) = &mut key_rows {
            keys.push(exec::eval_sort_keys(&plan.order_plan, &out, &group_row)?);
        }
        out_rows.push(out);
    }
    Ok(exec::finish_select(
        Relation::new(plan.out_cols, out_rows),
        key_rows,
        order_by,
        s.distinct,
    ))
}

/// Assign a group id to every selected row (ids in first-appearance
/// order, like the row engine) and collect each group's key values.
/// Integer and string single-column keys get dedicated hash paths; the
/// general case goes through [`RowKey`], which unifies `1` and `1.0`
/// exactly like the row engine does.
fn assign_groups(ctab: &ColumnarTable, key_cols: &[usize], sel: &[u32]) -> (Vec<u32>, Vec<Row>) {
    let mut gids = Vec::with_capacity(sel.len());
    let mut groups: Vec<Row> = Vec::new();
    if key_cols.is_empty() {
        if !sel.is_empty() {
            gids.resize(sel.len(), 0);
            groups.push(Vec::new());
        }
        return (gids, groups);
    }
    if let [c] = key_cols {
        let col = &ctab.columns[*c];
        match &col.data {
            ColumnData::Int64(xs) => {
                let mut map: HashMap<i64, u32> = HashMap::new();
                let mut null_gid: Option<u32> = None;
                for &i in sel {
                    let idx = i as usize;
                    let g = if col.is_null(idx) {
                        *null_gid.get_or_insert_with(|| {
                            groups.push(vec![Value::Null]);
                            (groups.len() - 1) as u32
                        })
                    } else {
                        match map.entry(xs[idx]) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                groups.push(vec![Value::Int(xs[idx])]);
                                *e.insert((groups.len() - 1) as u32)
                            }
                        }
                    };
                    gids.push(g);
                }
                return (gids, groups);
            }
            ColumnData::Str(ss) => {
                let mut map: HashMap<&str, u32> = HashMap::new();
                let mut null_gid: Option<u32> = None;
                for &i in sel {
                    let idx = i as usize;
                    let g = if col.is_null(idx) {
                        *null_gid.get_or_insert_with(|| {
                            groups.push(vec![Value::Null]);
                            (groups.len() - 1) as u32
                        })
                    } else {
                        match map.entry(ss[idx].as_str()) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                groups.push(vec![Value::Str(ss[idx].clone())]);
                                *e.insert((groups.len() - 1) as u32)
                            }
                        }
                    };
                    gids.push(g);
                }
                return (gids, groups);
            }
            _ => {}
        }
    }
    let mut map: HashMap<RowKey, u32> = HashMap::new();
    for &i in sel {
        let idx = i as usize;
        let key_vals: Row = key_cols
            .iter()
            .map(|&c| ctab.columns[c].value(idx))
            .collect();
        let g = match map.entry(RowKey::from_values(&key_vals)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                groups.push(key_vals);
                *e.insert((groups.len() - 1) as u32)
            }
        };
        gids.push(g);
    }
    (gids, groups)
}

/// Numeric view of a non-null column slot, with the row engine's exact
/// type error on non-numeric values.
fn numeric_at(col: &Column, idx: usize, func: AggFunc) -> Result<f64> {
    let type_err = |found: &str| DbError::TypeMismatch {
        context: format!("{func:?} argument"),
        expected: "number".to_string(),
        found: found.to_string(),
    };
    match &col.data {
        ColumnData::Int64(xs) => Ok(xs[idx] as f64),
        ColumnData::Float64(xs) => Ok(xs[idx]),
        ColumnData::Bool(bs) => Ok(if bs[idx] { 1.0 } else { 0.0 }),
        ColumnData::Str(_) => Err(type_err("string")),
        ColumnData::Mixed(vs) => vs[idx]
            .as_f64()
            .ok_or_else(|| type_err(vs[idx].type_name())),
    }
}

/// Evaluate one aggregate over all groups in a single columnar pass.
/// Floating-point accumulation visits rows in selection (= table) order,
/// matching the row engine's per-group summation order bit-for-bit.
fn compute_agg(
    ctab: &ColumnarTable,
    func: AggFunc,
    arg: Option<usize>,
    sel: &[u32],
    gids: &[u32],
    ngroups: usize,
) -> Result<Vec<Value>> {
    if func == AggFunc::CountStar {
        let mut counts = vec![0i64; ngroups];
        for &g in gids {
            counts[g as usize] += 1;
        }
        return Ok(counts.into_iter().map(Value::Int).collect());
    }
    let col = match arg {
        Some(c) => &ctab.columns[c],
        None => {
            return Err(DbError::InvalidAggregate(format!(
                "{func:?} requires an argument"
            )))
        }
    };
    match func {
        AggFunc::CountStar => unreachable!("handled above"),
        AggFunc::Count => {
            let mut counts = vec![0i64; ngroups];
            if col.nulls.any() {
                for (k, &i) in sel.iter().enumerate() {
                    if !col.is_null(i as usize) {
                        counts[gids[k] as usize] += 1;
                    }
                }
            } else {
                for &g in gids {
                    counts[g as usize] += 1;
                }
            }
            Ok(counts.into_iter().map(Value::Int).collect())
        }
        AggFunc::CountDistinct => {
            let mut sets: Vec<HashSet<ValueKey>> = vec![HashSet::new(); ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let key = match &col.data {
                    ColumnData::Int64(xs) => ValueKey::Int(xs[idx]),
                    ColumnData::Float64(xs) => ValueKey::from(&Value::Float(xs[idx])),
                    ColumnData::Bool(bs) => ValueKey::Bool(bs[idx]),
                    ColumnData::Str(ss) => ValueKey::Str(ss[idx].clone()),
                    ColumnData::Mixed(vs) => ValueKey::from(&vs[idx]),
                };
                sets[gids[k] as usize].insert(key);
            }
            Ok(sets
                .into_iter()
                .map(|s| Value::Int(s.len() as i64))
                .collect())
        }
        AggFunc::Sum | AggFunc::Avg => {
            let mut sums = vec![0.0f64; ngroups];
            let mut counts = vec![0usize; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let g = gids[k] as usize;
                sums[g] += numeric_at(col, idx, func)?;
                counts[g] += 1;
            }
            Ok((0..ngroups)
                .map(|g| {
                    if counts[g] == 0 {
                        Value::Null
                    } else if func == AggFunc::Sum {
                        Value::Float(sums[g])
                    } else {
                        Value::Float(sums[g] / counts[g] as f64)
                    }
                })
                .collect())
        }
        AggFunc::Min | AggFunc::Max => Ok(min_max(col, func, sel, gids, ngroups)),
        AggFunc::Median | AggFunc::Stddev => {
            let mut per: Vec<Vec<f64>> = vec![Vec::new(); ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                per[gids[k] as usize].push(numeric_at(col, idx, func)?);
            }
            Ok(per
                .into_iter()
                .map(|nums| {
                    if func == AggFunc::Median {
                        aggregate::median_of(nums)
                    } else {
                        aggregate::stddev_of(&nums)
                    }
                })
                .collect())
        }
    }
}

/// MIN/MAX with the row engine's tie-breaking (first occurrence wins on
/// `total_cmp` equality), specialized per column representation.
fn min_max(col: &Column, func: AggFunc, sel: &[u32], gids: &[u32], ngroups: usize) -> Vec<Value> {
    let min = func == AggFunc::Min;
    let adopt = |ord: Ordering| match ord {
        Ordering::Less => min,
        Ordering::Greater => !min,
        Ordering::Equal => false,
    };
    match &col.data {
        ColumnData::Int64(xs) => {
            let mut best: Vec<Option<i64>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(xs[idx]),
                    Some(cur) => {
                        if adopt(xs[idx].cmp(cur)) {
                            *cur = xs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Value::Int))
                .collect()
        }
        ColumnData::Float64(xs) => {
            let mut best: Vec<Option<f64>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(xs[idx]),
                    Some(cur) => {
                        if adopt(xs[idx].total_cmp(cur)) {
                            *cur = xs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Value::Float))
                .collect()
        }
        ColumnData::Bool(bs) => {
            let mut best: Vec<Option<bool>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(bs[idx]),
                    Some(cur) => {
                        if adopt(bs[idx].cmp(cur)) {
                            *cur = bs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Value::Bool))
                .collect()
        }
        ColumnData::Str(ss) => {
            // Track the best row index; clone the winning string once.
            let mut best: Vec<Option<usize>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(idx),
                    Some(cur) => {
                        if adopt(ss[idx].cmp(&ss[*cur])) {
                            *cur = idx;
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, |i| Value::Str(ss[i].clone())))
                .collect()
        }
        ColumnData::Mixed(vs) => {
            let mut best: Vec<Option<&Value>> = vec![None; ngroups];
            for (k, &i) in sel.iter().enumerate() {
                let idx = i as usize;
                if col.is_null(idx) {
                    continue;
                }
                let b = &mut best[gids[k] as usize];
                match b {
                    None => *b = Some(&vs[idx]),
                    Some(cur) => {
                        if adopt(vs[idx].total_cmp(cur)) {
                            *cur = &vs[idx];
                        }
                    }
                }
            }
            best.into_iter()
                .map(|o| o.map_or(Value::Null, Clone::clone))
                .collect()
        }
    }
}
