//! Error type for the database engine.

use std::fmt;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, DbError>;

/// Errors raised by planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column cannot be resolved in the current scope.
    UnknownColumn(String),
    /// A bare column name matches more than one column in scope.
    AmbiguousColumn(String),
    /// A value of the wrong type was supplied for a column.
    TypeMismatch {
        /// Where the mismatch happened (column, operator, aggregate).
        context: String,
        /// The type that was required.
        expected: String,
        /// The type that was actually supplied.
        found: String,
    },
    /// Row arity does not match the table schema.
    ArityMismatch {
        /// The schema's column count.
        expected: usize,
        /// The inserted row's width.
        found: usize,
    },
    /// The query uses a feature the engine does not execute.
    Unsupported(String),
    /// Aggregate function misuse (e.g. nested aggregates, non-grouped column).
    InvalidAggregate(String),
    /// A scalar function received bad arguments.
    InvalidFunction(String),
    /// Table already exists.
    DuplicateTable(String),
    /// Error bubbled up from the SQL parser.
    Parse(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            DbError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            DbError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, found {found}"
                )
            }
            DbError::Unsupported(what) => write!(f, "unsupported query feature: {what}"),
            DbError::InvalidAggregate(msg) => write!(f, "invalid aggregate usage: {msg}"),
            DbError::InvalidFunction(msg) => write!(f, "invalid function call: {msg}"),
            DbError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            DbError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<flex_sql::ParseError> for DbError {
    fn from(e: flex_sql::ParseError) -> Self {
        DbError::Parse(e.to_string())
    }
}
