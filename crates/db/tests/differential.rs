//! Differential tests between the two execution engines.
//!
//! The vectorized engine (`flex_db::vexec`) must be observationally
//! identical to the row interpreter on every query it accepts — same
//! rows, same order, same NULLs — because DP noise calibration hashes
//! the true results. These tests generate random supported queries over
//! random small tables (nulls, duplicates, mixed group sizes) and assert
//! `ResultSet` equality — both single-table blocks and two-table
//! INNER/LEFT equi-joins (ON and USING, residual predicates, NULL join
//! keys) that exercise the columnar join pipeline's predicate pushdown —
//! plus explicit NULL-handling cases for the vectorized aggregate
//! kernels, LEFT JOIN pushdown/padding regressions, and
//! LIMIT/OFFSET/ORDER BY regressions on both engines.

use flex_db::{DataType, Database, ResultSet, Schema, Value};
use flex_sql::parse_query;
use proptest::prelude::*;

/// Schema shared by every generated case: an Int, a Float, a Str and a
/// small Int "category" column, all nullable.
///
/// The fold grid (`set_morsel_rows`) is pinned to 3 rows **at build
/// time**, before any baseline executes: the reduction-grid chunk size
/// is determinism-bearing — part of the numeric function, bound into
/// the release fingerprint — so every run a test compares (row engine,
/// sequential columnar, every worker count) must share it. Pinning it
/// this small also makes the handful-of-row generated tables span many
/// fold chunks, so the fixed-shape tree really exercises multi-leaf
/// combines.
fn build_db(rows: Vec<(Value, Value, Value, Value)>) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Str),
            ("d", DataType::Int),
        ]),
    )
    .unwrap();
    db.insert(
        "t",
        rows.into_iter()
            .map(|(a, b, c, d)| vec![a, b, c, d])
            .collect(),
    )
    .unwrap();
    db.set_morsel_rows(3);
    db
}

fn arb_int() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (-4i64..5).prop_map(Value::Int),
        (-4i64..5).prop_map(Value::Int),
        (-4i64..5).prop_map(Value::Int),
    ]
    .boxed()
}

fn arb_float() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (-4i64..5).prop_map(|i| Value::Float(i as f64 * 0.5)),
        (-4i64..5).prop_map(|i| Value::Float(i as f64 * 0.5)),
        (-4i64..5).prop_map(|i| Value::Float(i as f64 * 0.5)),
        // A Float-typed column may physically hold Ints too: makes the
        // column Mixed, exercising the engines' cross-type comparison,
        // grouping and MIN/MAX paths.
        (-4i64..5).prop_map(Value::Int),
    ]
    .boxed()
}

fn arb_str() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        "[ab]{1,2}".prop_map(Value::Str),
        "[ab]{1,2}".prop_map(Value::Str),
        "[ab]{1,2}".prop_map(Value::Str),
    ]
    .boxed()
}

fn arb_cat() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..3).prop_map(Value::Int),
        (0i64..3).prop_map(Value::Int),
        (0i64..3).prop_map(Value::Int),
        (0i64..3).prop_map(Value::Int),
    ]
    .boxed()
}

fn arb_rows() -> BoxedStrategy<Vec<(Value, Value, Value, Value)>> {
    proptest::collection::vec((arb_int(), arb_float(), arb_str(), arb_cat()), 0..30).boxed()
}

/// A random WHERE predicate mixing kernel-covered comparisons (column op
/// literal, IS NULL, LIKE) with shapes that exercise the scalar fallback
/// (arithmetic, OR, BETWEEN, IN lists, cross-type comparisons).
fn arb_pred() -> BoxedStrategy<String> {
    prop_oneof![
        (-4i64..5).prop_map(|c| format!("a > {c}")),
        (-4i64..5).prop_map(|c| format!("a <= {c}")),
        (-4i64..5).prop_map(|c| format!("a <> {c}")),
        (-4i64..5).prop_map(|c| format!("b >= {}", c as f64 * 0.5)),
        (-4i64..5).prop_map(|c| format!("b < {c}")),
        "[ab]{1,2}".prop_map(|s| format!("c = '{s}'")),
        "[ab]{1,2}".prop_map(|s| format!("c >= '{s}'")),
        Just("a IS NULL".to_string()),
        Just("c IS NOT NULL".to_string()),
        "[ab]".prop_map(|s| format!("c LIKE '%{s}'")),
        "[ab]".prop_map(|s| format!("c NOT LIKE '{s}_'")),
        (-4i64..5).prop_map(|c| format!("a + d > {c}")),
        ((-4i64..1), (0i64..5)).prop_map(|(l, h)| format!("a BETWEEN {l} AND {h}")),
        (-4i64..5).prop_map(|c| format!("a > {c} AND d < 2")),
        (-4i64..5).prop_map(|c| format!("a > {c} OR b < 0")),
        Just("d IN (0, 2)".to_string()),
        // Cross-type comparison: NULL for every row under sql_cmp.
        Just("a > 'zzz'".to_string()),
    ]
    .boxed()
}

fn arb_where() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        arb_pred().prop_map(|p| format!(" WHERE {p}")),
        arb_pred().prop_map(|p| format!(" WHERE {p}")),
    ]
    .boxed()
}

/// Random queries covering every vectorized shape: plain projection,
/// columnar hash-aggregates on int/str/expression keys, grand
/// aggregates, plus DISTINCT / HAVING / ORDER BY / LIMIT tails.
fn arb_query() -> BoxedStrategy<String> {
    let plain = (arb_where(), 0u32..7, 0u32..6, 0u32..2).prop_map(|(w, ob, lim, dis)| {
        let distinct = if dis == 1 { "DISTINCT " } else { "" };
        let order = match ob {
            0 => "",
            1 => " ORDER BY a, b, c, d",
            2 => " ORDER BY 1 DESC, 4",
            3 => " ORDER BY c DESC, a",
            // Multi-key with mixed directions, NULLs in every key.
            4 => " ORDER BY b DESC, d DESC, a",
            5 => " ORDER BY d, c DESC, b",
            // Single Float key: the typed pair-sort fast path.
            _ => " ORDER BY b DESC",
        };
        let limit = match lim {
            0 => "",
            1 => " LIMIT 5",
            2 => " LIMIT 3 OFFSET 2",
            3 => " LIMIT 2 OFFSET 40",
            4 => " LIMIT 1",
            _ => " LIMIT 0",
        };
        format!("SELECT {distinct}a, b, c, d FROM t{w}{order}{limit}")
    });
    // Aliased plain-column projection: ORDER BY resolves aliases and
    // ordinals against the output columns (the shared resolution rule),
    // and the vectorized tail must map them back to source columns.
    let aliased = (arb_where(), 0u32..3, 0u32..3, 0u32..2).prop_map(|(w, ob, lim, dis)| {
        let distinct = if dis == 1 { "DISTINCT " } else { "" };
        let order = match ob {
            0 => " ORDER BY x DESC, y",
            1 => " ORDER BY 2, x DESC",
            // `a` names the output column (aliased from d), not t.a.
            _ => " ORDER BY a DESC, x",
        };
        let limit = match lim {
            0 => "",
            1 => " LIMIT 4",
            _ => " LIMIT 3 OFFSET 1",
        };
        format!("SELECT {distinct}a AS x, b AS y, d AS a FROM t{w}{order}{limit}")
    });
    // Computed projection with ORDER BY on the alias: ineligible for the
    // columnar tail (fallible projection), pinning the row-tail fallback
    // against the row engine.
    let computed = (arb_where(), 0u32..2).prop_map(|(w, lim)| {
        let limit = if lim == 0 { "" } else { " LIMIT 3 OFFSET 1" };
        format!("SELECT a + d AS k, c FROM t{w} ORDER BY k DESC, c{limit}")
    });
    let agg_int_key = (arb_where(), 0u32..3, 0u32..3, 0u32..3).prop_map(|(w, hv, ob, lim)| {
        let having = match hv {
            0 => "",
            1 => " HAVING COUNT(*) > 1",
            _ => " HAVING SUM(a) >= 0",
        };
        let order = match ob {
            0 => "",
            1 => " ORDER BY n DESC, d",
            _ => " ORDER BY 1",
        };
        // LIMIT under ORDER BY exercises the grouped top-K tail.
        let limit = match (ob, lim) {
            (_, 0) | (0, _) => "",
            (_, 1) => " LIMIT 2",
            _ => " LIMIT 1 OFFSET 1",
        };
        format!(
            "SELECT d, COUNT(*) AS n, SUM(a), AVG(b), MIN(c), MAX(a), \
             COUNT(DISTINCT a) FROM t{w} GROUP BY d{having}{order}{limit}"
        )
    });
    let agg_str_key = (arb_where(), 0u32..2).prop_map(|(w, ob)| {
        let order = if ob == 0 { "" } else { " ORDER BY 2 DESC, 1" };
        format!("SELECT c, COUNT(*), MIN(a), MEDIAN(b) FROM t{w} GROUP BY c{order}")
    });
    let agg_multi_key = (arb_where(),).prop_map(|(w,)| {
        format!("SELECT d, c, COUNT(*), SUM(b) FROM t{w} GROUP BY d, c ORDER BY 3 DESC, 1, 2")
    });
    // Expression group key: vectorized filter + row-engine grouping.
    let agg_expr_key = (arb_where(),).prop_map(|(w,)| {
        format!("SELECT a + d AS k, COUNT(*) FROM t{w} GROUP BY a + d ORDER BY 2 DESC, 1")
    });
    let grand = arb_where().prop_map(|w| {
        format!("SELECT COUNT(*), SUM(b), MEDIAN(a), STDDEV(b), MIN(b), MAX(c) FROM t{w}")
    });
    prop_oneof![
        plain,
        aliased,
        computed,
        agg_int_key,
        agg_str_key,
        agg_multi_key,
        agg_expr_key,
        grand,
    ]
    .boxed()
}

/// Add the join partner table `r(a Int, w Int, u Str)` — `a` is shared
/// with `t` so `USING (a)` works, all columns nullable.
fn add_r(db: &mut Database, rows: Vec<(Value, Value, Value)>) {
    db.create_table(
        "r",
        Schema::of(&[
            ("a", DataType::Int),
            ("w", DataType::Int),
            ("u", DataType::Str),
        ]),
    )
    .unwrap();
    db.insert(
        "r",
        rows.into_iter().map(|(a, w, u)| vec![a, w, u]).collect(),
    )
    .unwrap();
}

fn arb_r_rows() -> BoxedStrategy<Vec<(Value, Value, Value)>> {
    proptest::collection::vec((arb_int(), arb_int(), arb_str()), 0..25).boxed()
}

/// Random two-table equi-join queries covering the columnar join
/// pipeline: INNER and LEFT, ON and USING, kernelizable and fallible
/// residuals, WHERE conjuncts pushed to either side or kept post-join,
/// NULL join keys, plain/grand/grouped projections and ORDER BY/LIMIT
/// tails.
fn arb_join_query() -> BoxedStrategy<String> {
    let jt = prop_oneof![Just("JOIN"), Just("LEFT JOIN")];
    let on = prop_oneof![
        Just("ON x.a = y.a".to_string()),
        Just("USING (a)".to_string()),
        // Kernelizable ON residuals (pushable per side).
        (-4i64..5).prop_map(|c| format!("ON x.a = y.a AND y.w >= {c}")),
        (-4i64..5).prop_map(|c| format!("ON x.a = y.a AND x.d <> {c}")),
        // Fallible residual: evaluated per candidate pair, no pushdown.
        Just("ON x.a = y.a AND x.b < y.w".to_string()),
    ];
    let wh = prop_oneof![
        Just(String::new()),
        (-4i64..5).prop_map(|c| format!(" WHERE x.d > {c}")),
        (-4i64..5).prop_map(|c| format!(" WHERE y.w <= {c}")),
        Just(" WHERE y.u IS NULL".to_string()),
        Just(" WHERE y.u IS NOT NULL AND x.c IS NOT NULL".to_string()),
        "[ab]{1,2}".prop_map(|s| format!(" WHERE x.c = '{s}' AND y.w > -2")),
        // Both-side / fallible conjuncts: the whole WHERE runs post-join.
        (-4i64..5).prop_map(|c| format!(" WHERE x.b + y.w > {c}")),
        Just(" WHERE x.a > 0 OR y.w > 2".to_string()),
    ];
    let shape = prop_oneof![
        (0u32..3).prop_map(|ob| {
            let order = match ob {
                0 => "",
                1 => " ORDER BY x.a, x.b, x.c, x.d, y.w, y.u",
                _ => " ORDER BY y.w DESC, 1, 2",
            };
            format!("SELECT x.a, x.c, y.w, y.u FROM_JOIN{order}")
        }),
        Just("SELECT * FROM_JOIN LIMIT 7".to_string()),
        Just("SELECT y.* FROM_JOIN".to_string()),
        // Columnar tail over the joined table: top-K and DISTINCT on
        // late-materialized columns.
        Just("SELECT x.a, x.c, y.w, y.u FROM_JOIN ORDER BY y.w DESC, x.a, x.c, y.u LIMIT 5 OFFSET 1".to_string()),
        Just("SELECT DISTINCT x.d, y.u FROM_JOIN ORDER BY 1 DESC, 2 LIMIT 3".to_string()),
        Just(
            "SELECT COUNT(*), COUNT(y.w), SUM(y.w), MIN(x.c), MAX(y.w), \
             COUNT(DISTINCT y.u) FROM_JOIN"
                .to_string()
        ),
        Just("SELECT x.d, COUNT(*) AS n, SUM(y.w), MIN(y.u) FROM_JOIN GROUP BY x.d ORDER BY n DESC, 1".to_string()),
        Just("SELECT y.u, COUNT(*), SUM(x.b) FROM_JOIN GROUP BY y.u ORDER BY 2 DESC, 1 LIMIT 4".to_string()),
        // Expression group key: columnar join + row-engine grouping.
        Just("SELECT x.d + y.w AS k, COUNT(*) FROM_JOIN GROUP BY x.d + y.w ORDER BY 2 DESC, 1".to_string()),
    ];
    (shape, jt, on, wh)
        .prop_map(|(shape, jt, on, wh)| {
            shape.replace("FROM_JOIN", &format!(" FROM t x {jt} r y {on}{wh}"))
        })
        .boxed()
}

/// Random queries over the plan-IR shapes: three-table join trees,
/// RIGHT/FULL/CROSS and non-equi joins, derived tables in FROM
/// (standalone and as join leaves), UNION / UNION ALL trees, and
/// computed / constant projection or sort items that engage the
/// speculative mixed tail.
fn arb_tree_query() -> BoxedStrategy<String> {
    // RIGHT/FULL joins: matched-bit padding on the build side.
    let outer = (
        prop_oneof![Just("RIGHT JOIN"), Just("FULL JOIN")],
        prop_oneof![
            Just("ON x.a = y.a".to_string()),
            (-4i64..5).prop_map(|c| format!("ON x.a = y.a AND y.w >= {c}")),
            (-4i64..5).prop_map(|c| format!("ON x.a = y.a AND x.d <> {c}")),
            // Fallible residual: evaluated per candidate pair.
            Just("ON x.a = y.a AND x.b < y.w".to_string()),
        ],
        prop_oneof![
            Just(String::new()),
            (-4i64..5).prop_map(|c| format!(" WHERE y.w <= {c}")),
            Just(" WHERE x.a IS NULL".to_string()),
            Just(" WHERE x.c IS NOT NULL OR y.u IS NULL".to_string()),
        ],
        0u32..3,
    )
        .prop_map(|(jt, on, wh, shape)| match shape {
            0 => format!("SELECT x.a, x.c, y.w, y.u FROM t x {jt} r y {on}{wh}"),
            1 => format!(
                "SELECT x.a, y.w, y.u FROM t x {jt} r y {on}{wh} \
                 ORDER BY x.a, y.w, y.u LIMIT 9 OFFSET 1"
            ),
            _ => format!(
                "SELECT COUNT(*), COUNT(x.a), SUM(y.w), MIN(y.u) FROM t x {jt} r y {on}{wh}"
            ),
        });
    // CROSS and non-equi joins: nested-loop morsels.
    let nonequi = (
        prop_oneof![
            Just("CROSS JOIN r y".to_string()),
            Just("JOIN r y ON x.a < y.a".to_string()),
            Just("JOIN r y ON x.b >= y.w".to_string()),
            Just("LEFT JOIN r y ON x.a <> y.a".to_string()),
            // Keyless one-sided constraint: every probe row scans the
            // whole build side.
            Just("JOIN r y ON x.d = 2".to_string()),
        ],
        prop_oneof![
            Just(String::new()),
            (-4i64..5).prop_map(|c| format!(" WHERE x.d > {c}")),
            Just(" WHERE y.u IS NOT NULL".to_string()),
        ],
        0u32..2,
    )
        .prop_map(|(j, wh, shape)| match shape {
            0 => format!("SELECT x.a, x.d, y.w FROM t x {j}{wh} LIMIT 40"),
            _ => format!("SELECT COUNT(*), SUM(x.a + y.w) FROM t x {j}{wh}"),
        });
    // Left-deep three-table trees: the greedy build-side choice is pure
    // scheduling, so bytes cannot depend on which side gets built.
    let tree = (
        prop_oneof![Just("JOIN"), Just("LEFT JOIN")],
        prop_oneof![Just("JOIN"), Just("LEFT JOIN"), Just("RIGHT JOIN")],
        prop_oneof![
            Just(String::new()),
            (-4i64..5).prop_map(|c| format!(" WHERE y.w <= {c}")),
            (-4i64..5).prop_map(|c| format!(" WHERE x.d + z.d > {c}")),
        ],
        0u32..3,
    )
        .prop_map(|(j1, j2, wh, shape)| {
            let from = format!("FROM t x {j1} r y ON x.a = y.a {j2} t z ON y.a = z.a");
            match shape {
                0 => format!("SELECT x.a, y.w, z.d {from}{wh}"),
                1 => format!("SELECT x.c, y.u, z.b {from}{wh} ORDER BY x.c, y.u, z.b DESC LIMIT 8"),
                _ => format!(
                    "SELECT z.d, COUNT(*) AS n, SUM(y.w) {from}{wh} \
                     GROUP BY z.d ORDER BY n DESC, 1"
                ),
            }
        });
    // Derived tables: the subquery runs first and columnarizes into the
    // outer scan — standalone FROM and as a join-tree leaf.
    let derived = (arb_pred(), 0u32..3).prop_map(|(p, shape)| match shape {
        0 => format!("SELECT COUNT(*), SUM(s.k) FROM (SELECT a + d AS k FROM t WHERE {p}) s"),
        1 => format!(
            "SELECT s.a, s.b FROM (SELECT a, b FROM t WHERE {p} ORDER BY a, b LIMIT 9) s \
             ORDER BY s.a DESC, s.b"
        ),
        _ => format!(
            "SELECT x.c, s.w FROM t x JOIN (SELECT a, w FROM r WHERE {p2}) s ON x.a = s.a \
             ORDER BY x.c, s.w",
            p2 = "w IS NOT NULL"
        ),
    });
    // UNION trees: columnar concatenation + per-node first-occurrence
    // dedup, including a nested three-arm tree.
    let union = (arb_pred(), 0u32..2, 0u32..4).prop_map(|(p, all, tail)| {
        let op = if all == 0 { "UNION" } else { "UNION ALL" };
        let t = match tail {
            0 => "",
            1 => " ORDER BY 1 DESC, 2",
            2 => " ORDER BY a, d DESC LIMIT 6 OFFSET 1",
            _ => " LIMIT 5",
        };
        format!("SELECT a, d FROM t WHERE {p} {op} SELECT a, w FROM r{t}")
    });
    let union3 = (0u32..2).prop_map(|all| {
        let op = if all == 0 { "UNION" } else { "UNION ALL" };
        format!("SELECT a FROM t {op} SELECT a FROM r UNION SELECT d FROM t ORDER BY 1")
    });
    // Speculative mixed tail: computed / constant projection items and
    // computed sort keys, including fallible expressions (Str operands)
    // whose errors must match the row engine's.
    let mixed_tail = (arb_where(), 0u32..6).prop_map(|(w, shape)| match shape {
        0 => format!("SELECT a, b FROM t{w} ORDER BY a + d DESC, b, a"),
        1 => format!("SELECT a * 2 AS k, c FROM t{w} ORDER BY k DESC, c, a LIMIT 6"),
        2 => format!("SELECT DISTINCT 1 AS one, d FROM t{w} ORDER BY one, d DESC"),
        3 => format!("SELECT DISTINCT a + d AS k FROM t{w} ORDER BY k LIMIT 4"),
        4 => format!("SELECT a + b AS s2, c FROM t{w} ORDER BY 1, 2 OFFSET 2"),
        // Type error on non-NULL strings: both engines must fail.
        _ => format!("SELECT a, c FROM t{w} ORDER BY a + c, a"),
    });
    prop_oneof![outer, nonequi, tree, derived, union, union3, mixed_tail].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The vectorized engine and the row interpreter return identical
    /// `ResultSet`s (or both fail) on every generated query.
    #[test]
    fn engines_agree_on_random_queries(rows in arb_rows(), sql in arb_query()) {
        let db = build_db(rows);
        let vectorized = db.execute_sql(&sql);
        let row = db.execute_sql_row(&sql);
        match (vectorized, row) {
            (Ok(v), Ok(r)) => prop_assert_eq!(v, r, "engines disagree on: {}", sql),
            (Err(_), Err(_)) => {}
            (v, r) => prop_assert!(
                false,
                "one engine failed on {}: vectorized={:?} row={:?}",
                sql, v, r
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same contract for two-table equi-joins: the columnar hash-join
    /// pipeline (pushdown, match vectors, late materialization) must be
    /// indistinguishable from the row interpreter, so DP noise seeds are
    /// unaffected by routing.
    #[test]
    fn engines_agree_on_random_join_queries(
        trows in arb_rows(),
        rrows in arb_r_rows(),
        sql in arb_join_query(),
    ) {
        let mut db = build_db(trows);
        add_r(&mut db, rrows);
        let vectorized = db.execute_sql(&sql);
        let row = db.execute_sql_row(&sql);
        match (vectorized, row) {
            (Ok(v), Ok(r)) => prop_assert_eq!(v, r, "engines disagree on: {}", sql),
            (Err(_), Err(_)) => {}
            (v, r) => prop_assert!(
                false,
                "one engine failed on {}: vectorized={:?} row={:?}",
                sql, v, r
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same contract for the plan-IR shapes: join trees, outer/cross/
    /// non-equi joins, derived tables and UNIONs must be byte-identical
    /// to the row interpreter — including *which* runtime error
    /// surfaces on fallible computed tails.
    #[test]
    fn engines_agree_on_random_tree_queries(
        trows in arb_rows(),
        rrows in arb_r_rows(),
        sql in arb_tree_query(),
    ) {
        let mut db = build_db(trows);
        add_r(&mut db, rrows);
        let vectorized = db.execute_sql(&sql);
        let row = db.execute_sql_row(&sql);
        match (vectorized, row) {
            (Ok(v), Ok(r)) => prop_assert_eq!(v, r, "engines disagree on: {}", sql),
            (Err(v), Err(r)) => prop_assert_eq!(
                v.to_string(),
                r.to_string(),
                "engines report different errors on: {}",
                sql
            ),
            (v, r) => prop_assert!(
                false,
                "one engine failed on {}: vectorized={:?} row={:?}",
                sql, v, r
            ),
        }
    }
}

// ---- morsel-parallel execution: byte-identity across worker counts -------

/// Engage real multi-morsel parallel merging on the tiny generated
/// tables: [`build_db`] already pinned 3-row fold chunks, so raising the
/// worker count is all it takes to force per-morsel group tables,
/// partial aggregates and match vectors to actually merge. Only the
/// worker count moves — the fold grid stays where the baseline ran.
fn parallelize(db: &Database, workers: usize) {
    db.set_parallelism(workers);
}

/// Both executions must agree exactly: same `ResultSet` (rows, order,
/// NULLs, float bits) or the same error.
fn assert_modes_agree(
    seq: Result<ResultSet, flex_db::DbError>,
    par: Result<ResultSet, flex_db::DbError>,
    workers: usize,
    sql: &str,
) -> Result<(), proptest::TestCaseError> {
    match (seq, par) {
        (Ok(s), Ok(p)) => prop_assert_eq!(s, p, "parallel({}) diverges on: {}", workers, sql),
        (Err(s), Err(p)) => prop_assert_eq!(
            s.to_string(),
            p.to_string(),
            "parallel({}) reports a different error on: {}",
            workers,
            sql
        ),
        (s, p) => prop_assert!(
            false,
            "one mode failed on {} (workers {}): seq={:?} par={:?}",
            sql,
            workers,
            s,
            p
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequential (`parallelism = 1`) and morsel-parallel (2–8 workers)
    /// executions are byte-identical on every accepted single-table
    /// query: per-morsel partial states merge in morsel order, so rows,
    /// float bit patterns and error choices cannot depend on the worker
    /// count — and neither can DP noise seeds downstream.
    #[test]
    fn parallel_matches_sequential_on_random_queries(
        rows in arb_rows(),
        sql in arb_query(),
        workers in 2usize..=8,
    ) {
        let db = build_db(rows);
        let seq = db.execute_sql(&sql);
        parallelize(&db, workers);
        let par = db.execute_sql(&sql);
        assert_modes_agree(seq, par, workers, &sql)?;
    }

    /// Same contract for the columnar join pipeline: parallel per-side
    /// scans, morsel-parallel probes of the shared build side and
    /// parallel post-join filters must reproduce the sequential match
    /// vectors exactly.
    #[test]
    fn parallel_matches_sequential_on_random_join_queries(
        trows in arb_rows(),
        rrows in arb_r_rows(),
        sql in arb_join_query(),
        workers in 2usize..=8,
    ) {
        let mut db = build_db(trows);
        add_r(&mut db, rrows);
        let seq = db.execute_sql(&sql);
        parallelize(&db, workers);
        let par = db.execute_sql(&sql);
        assert_modes_agree(seq, par, workers, &sql)?;
    }

    /// Same contract for the plan-IR shapes: nested-loop morsels,
    /// matched-bit padding, derived-table intermediates, union
    /// concatenation and the speculative mixed tail must all merge in
    /// morsel order — rows, float bits and error choices cannot depend
    /// on the worker count.
    #[test]
    fn parallel_matches_sequential_on_random_tree_queries(
        trows in arb_rows(),
        rrows in arb_r_rows(),
        sql in arb_tree_query(),
        workers in 2usize..=8,
    ) {
        let mut db = build_db(trows);
        add_r(&mut db, rrows);
        let seq = db.execute_sql(&sql);
        parallelize(&db, workers);
        let par = db.execute_sql(&sql);
        assert_modes_agree(seq, par, workers, &sql)?;
    }
}

// ---- top-K pushdown: byte-identity against the full sort ------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `ORDER BY … LIMIT k OFFSET o` must return exactly rows
    /// `o..o + k` of the same query's full sort — the bounded top-K heap
    /// (and its morsel-parallel variant) is pinned against the full-sort
    /// path it replaces, at every worker count, and against the row
    /// engine.
    #[test]
    fn topk_limit_is_a_prefix_of_the_full_sort(
        rows in arb_rows(),
        w in arb_where(),
        ob in 0u32..5,
        limit in 0u64..8,
        offset in 0u64..6,
        workers in 1usize..=8,
    ) {
        let order = match ob {
            0 => "a DESC, b, c, d",
            1 => "b, a DESC, c DESC, d",
            2 => "c, 1 DESC",
            3 => "d DESC, a",
            // Single Float key: the typed pair-sort / pair-heap path.
            _ => "b DESC",
        };
        let full_sql = format!("SELECT a, b, c, d FROM t{w} ORDER BY {order}");
        let lim_sql = format!("{full_sql} LIMIT {limit} OFFSET {offset}");
        let db = build_db(rows);
        parallelize(&db, workers);
        let full = db.execute_sql(&full_sql).unwrap();
        let limited = db.execute_sql(&lim_sql).unwrap();
        let lo = (offset as usize).min(full.rows.len());
        let hi = (lo + limit as usize).min(full.rows.len());
        prop_assert_eq!(
            &limited.rows[..],
            &full.rows[lo..hi],
            "top-K is not a prefix of the full sort: {} (workers {})",
            lim_sql,
            workers
        );
        let row = db.execute_sql_row(&lim_sql).unwrap();
        prop_assert_eq!(limited, row, "engines disagree on: {}", lim_sql);
    }
}

/// LIMIT cutting *inside* a run of duplicate sort keys must keep exactly
/// the row engine's tie order (input order) at the boundary — the heap's
/// index tie-break, the loser tree's run tie-break, and the stable sort
/// must all agree.
#[test]
fn topk_tie_order_matches_full_sort_at_boundary() {
    let rows: Vec<_> = (0..24)
        .map(|i| {
            (
                Value::Int(i),
                Value::Float((i % 2) as f64), // heavy ties on b
                Value::str(if i % 2 == 0 { "x" } else { "y" }),
                Value::Int(i % 3), // heavy ties on d
            )
        })
        .collect();
    let db = build_db(rows);
    for sql_full in [
        "SELECT a, d FROM t ORDER BY d",
        "SELECT a, d FROM t ORDER BY d DESC",
        "SELECT a, b FROM t ORDER BY b DESC",
    ] {
        let full = both(&db, sql_full);
        for (limit, offset) in [(4, 0), (4, 1), (1, 7), (30, 2)] {
            let sql = format!("{sql_full} LIMIT {limit} OFFSET {offset}");
            let sliced = both(&db, &sql);
            let lo = offset.min(full.rows.len());
            let hi = (lo + limit).min(full.rows.len());
            assert_eq!(sliced.rows, &full.rows[lo..hi], "boundary slice: {sql}");
            // And identically under morsel-parallel top-K.
            parallelize(&db, 4);
            let par = db.execute_sql(&sql).unwrap();
            assert_eq!(par.rows, sliced.rows, "parallel boundary slice: {sql}");
            db.set_parallelism(1);
        }
    }
}

/// NaN and -0.0 sort keys: `total_cmp` orders -NaN < … < -0.0 < 0.0 < …
/// < NaN, and the engines (full sort, top-K, morsel-parallel, row) must
/// place the exact bit patterns in the same slots.
#[test]
fn order_by_nan_negative_zero_sort_keys_bit_identical() {
    let b_vals = [f64::NAN, -0.0, 0.0, -f64::NAN, 1.5, f64::NAN, -2.5, -0.0];
    let rows: Vec<_> = b_vals
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            (
                Value::Int(i as i64),
                Value::Float(b),
                Value::str("s"),
                Value::Int(0),
            )
        })
        .collect();
    let db = build_db(rows);
    for sql in [
        "SELECT a, b FROM t ORDER BY b",
        "SELECT a, b FROM t ORDER BY b DESC",
        "SELECT a, b FROM t ORDER BY b LIMIT 3",
        "SELECT a, b FROM t ORDER BY b DESC LIMIT 4 OFFSET 2",
        "SELECT a, b FROM t ORDER BY b DESC, a LIMIT 5",
    ] {
        let v = db.execute_sql(sql).unwrap();
        let r = db.execute_sql_row(sql).unwrap();
        assert_rows_bit_identical(&v, &r, sql);
        parallelize(&db, 4);
        let p = db.execute_sql(sql).unwrap();
        assert_rows_bit_identical(&p, &r, sql);
        db.set_parallelism(1);
    }
}

/// Top-K over a mostly-NULL sort key: NULL indices are collected under
/// the same `offset + k` cap as the pairs (only the first k can survive
/// the splice), and the output must still equal the full sort's prefix
/// in both directions — NULLs first ascending, last descending — at
/// every worker count.
#[test]
fn topk_on_mostly_null_key_matches_full_sort() {
    let rows: Vec<_> = (0..40)
        .map(|i| {
            let b = if i % 5 == 0 {
                Value::Float(i as f64)
            } else {
                Value::Null // 80% NULL keys
            };
            (Value::Int(i), b, Value::str("s"), Value::Int(0))
        })
        .collect();
    let db = build_db(rows);
    for sql_full in [
        "SELECT a, b FROM t ORDER BY b",
        "SELECT a, b FROM t ORDER BY b DESC",
    ] {
        let full = both(&db, sql_full);
        for (limit, offset) in [(3, 0), (5, 2), (10, 35)] {
            let sql = format!("{sql_full} LIMIT {limit} OFFSET {offset}");
            let sliced = both(&db, &sql);
            let lo = offset.min(full.rows.len());
            let hi = (lo + limit).min(full.rows.len());
            assert_eq!(sliced.rows, &full.rows[lo..hi], "null-heavy slice: {sql}");
            parallelize(&db, 4);
            let par = db.execute_sql(&sql).unwrap();
            assert_eq!(par.rows, sliced.rows, "parallel null-heavy slice: {sql}");
            db.set_parallelism(1);
        }
    }
}

/// OFFSET past the end of an ordered (and DISTINCT) result: the tail
/// must clamp to empty on every path, not panic or wrap.
#[test]
fn order_by_offset_past_end_is_empty() {
    let db = null_db();
    for sql in [
        "SELECT a, b FROM t ORDER BY a DESC LIMIT 2 OFFSET 40",
        "SELECT DISTINCT d FROM t ORDER BY d LIMIT 5 OFFSET 9",
        "SELECT a FROM t ORDER BY b LIMIT 0 OFFSET 3",
        "SELECT d, COUNT(*) FROM t GROUP BY d ORDER BY 2 DESC LIMIT 3 OFFSET 8",
    ] {
        let rs = both(&db, sql);
        assert!(rs.rows.is_empty(), "expected empty result for: {sql}");
        parallelize(&db, 3);
        assert!(
            db.execute_sql(sql).unwrap().rows.is_empty(),
            "parallel: expected empty result for: {sql}"
        );
        db.set_parallelism(1);
    }
}

/// DISTINCT composed with ORDER BY and LIMIT: dedupe happens after the
/// sort and before the slice, first occurrence in sorted order wins —
/// including sort keys outside the projection.
#[test]
fn distinct_order_by_limit_combinations() {
    let db = join_db();
    for sql in [
        "SELECT DISTINCT d, c FROM t ORDER BY d DESC, c LIMIT 2 OFFSET 1",
        "SELECT DISTINCT d FROM t ORDER BY d DESC LIMIT 2",
        // Sort key not in the projection: dedupe keys and sort keys come
        // from different columns.
        "SELECT DISTINCT d FROM t ORDER BY a, b LIMIT 3",
        "SELECT DISTINCT c FROM t LIMIT 2",
    ] {
        let seq = both(&db, sql);
        parallelize(&db, 4);
        let par = db.execute_sql(sql).unwrap();
        assert_eq!(par, seq, "parallel diverges on: {sql}");
        db.set_parallelism(1);
    }
}

/// The pipeline's own trace must report the top-K pushdown exactly when
/// the bounded path engages — that is what the service's `topk_hits`
/// telemetry counts.
#[test]
fn exec_trace_reports_topk_pushdown() {
    let rows: Vec<_> = (0..20)
        .map(|i| {
            (
                Value::Int(i),
                Value::Float(i as f64),
                Value::str("s"),
                Value::Int(i % 7),
            )
        })
        .collect();
    let db = build_db(rows);
    let case = |sql: &str| {
        let q = parse_query(sql).unwrap();
        let (trace, result) = db.execute_traced(&q);
        result.unwrap();
        trace
    };
    // Eligible: ORDER BY + LIMIT smaller than the input, no DISTINCT.
    let t = case("SELECT a, b FROM t ORDER BY b DESC LIMIT 3");
    assert!(t.vectorized() && t.topk, "plain top-K should engage: {t:?}");
    // Grouped top-K over group indices.
    let t = case("SELECT d, COUNT(*) AS n FROM t GROUP BY d ORDER BY n DESC, d LIMIT 2");
    assert!(
        t.vectorized() && t.topk,
        "grouped top-K should engage: {t:?}"
    );
    // No LIMIT → full sort, no pushdown.
    let t = case("SELECT a, b FROM t ORDER BY b DESC");
    assert!(
        t.vectorized() && !t.topk,
        "full sort is not a top-K hit: {t:?}"
    );
    // DISTINCT disables the bounded path (dedupe follows the sort).
    let t = case("SELECT DISTINCT d FROM t ORDER BY d LIMIT 3");
    assert!(t.vectorized() && !t.topk, "DISTINCT disables top-K: {t:?}");
    // LIMIT covering the whole input: nothing to bound.
    let t = case("SELECT a FROM t ORDER BY a LIMIT 500");
    assert!(
        t.vectorized() && !t.topk,
        "covering LIMIT is not a hit: {t:?}"
    );
    // Row-engine fallback never reports top-K.
    let t = case("SELECT a FROM t INTERSECT SELECT d FROM t");
    assert!(!t.vectorized() && !t.topk, "row fallback: {t:?}");
}

/// `Value::total_cmp` is not transitive across physical types: Int-vs-Int
/// compares exact i64, Int-vs-Float coerces through f64, so on a Mixed
/// column `Float(2^53)` f64-ties `Int(2^53 + 1)` while `Int(2^53)` beats
/// it exactly. A parallel MIN/MAX that merged per-morsel *winners* would
/// therefore diverge from the sequential left fold (the morsel holding
/// `[Float(2^53), Int(2^53)]` elects `Float(2^53)`, which then ties — and
/// loses first-wins — against `Int(2^53 + 1)` globally, discarding the
/// true minimum). The value-collecting `BestValues` partial replays the
/// sequential fold instead; this pins it.
#[test]
fn parallel_min_max_on_mixed_column_matches_sequential_above_2p53() {
    let two53 = 9_007_199_254_740_992i64;
    let mut db = Database::new();
    db.create_table("m", Schema::of(&[("v", DataType::Float)]))
        .unwrap();
    db.insert(
        "m",
        vec![
            vec![Value::Null],
            vec![Value::Int(two53 + 1)],
            vec![Value::Float(two53 as f64)],
            vec![Value::Int(two53)],
        ],
    )
    .unwrap();
    // Fold grid fixed before any baseline runs (MIN/MAX never folds on
    // the grid, but the contract is uniform: compared runs share it).
    db.set_morsel_rows(2);
    for sql in ["SELECT MIN(v) FROM m", "SELECT MAX(v) FROM m"] {
        let seq = db.execute_sql(sql).unwrap();
        let row = db.execute_sql_row(sql).unwrap();
        assert_eq!(seq, row, "engines disagree on: {sql}");
        db.set_parallelism(2);
        let par = db.execute_sql(sql).unwrap();
        assert_eq!(par, seq, "parallel diverges on: {sql}");
        db.set_parallelism(1);
    }
}

#[test]
fn parallel_error_choice_matches_sequential() {
    // Rows erroring in *later* morsels only: the parallel generic filter
    // must report the sequential first-in-row-order error even though
    // other morsels ran concurrently (and an all-Ok earlier morsel must
    // not mask it).
    let mut rows = vec![
        (
            Value::Int(1),
            Value::Float(0.0),
            Value::str("ok"),
            Value::Int(0),
        );
        10
    ];
    // Row 7: `a = 1` is NULL here, so AND keeps evaluating and `c + 1`
    // type-errors on the string.
    rows[7].0 = Value::Null;
    let db = build_db(rows);
    let sql = "SELECT COUNT(*) FROM t WHERE a = 2 AND c + 1 > 0";
    let seq = db.execute_sql(sql).unwrap_err();
    parallelize(&db, 4);
    let par = db.execute_sql(sql).unwrap_err();
    assert_eq!(seq.to_string(), par.to_string());
}

// ---- explicit NULL handling in vectorized aggregates ---------------------

/// Run on both engines, assert agreement, and return the shared result.
fn both(db: &Database, sql: &str) -> ResultSet {
    let v = db.execute_sql(sql).unwrap();
    let r = db.execute_sql_row(sql).unwrap();
    assert_eq!(v, r, "engines disagree on: {sql}");
    v
}

fn null_db() -> Database {
    // d=0 has only NULL a/b values; d=1 mixes; d=NULL is its own group.
    build_db(vec![
        (Value::Null, Value::Null, Value::Null, Value::Int(0)),
        (Value::Null, Value::Null, Value::str("x"), Value::Int(0)),
        (
            Value::Int(3),
            Value::Float(1.5),
            Value::str("y"),
            Value::Int(1),
        ),
        (Value::Null, Value::Float(2.5), Value::Null, Value::Int(1)),
        (Value::Int(3), Value::Null, Value::str("y"), Value::Null),
    ])
}

#[test]
fn vectorized_aggregates_skip_nulls() {
    let db = null_db();
    let rs = both(
        &db,
        "SELECT COUNT(*), COUNT(a), COUNT(DISTINCT a), SUM(a), AVG(b), MIN(a), MAX(b) FROM t",
    );
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Int(5),     // COUNT(*) counts NULL rows
            Value::Int(2),     // COUNT(a) skips NULLs
            Value::Int(1),     // both non-null a's are 3
            Value::Float(6.0), // SUM over non-null
            Value::Float(2.0), // AVG of {1.5, 2.5}
            Value::Int(3),     // MIN skips NULLs
            Value::Float(2.5), // MAX skips NULLs
        ]
    );
}

#[test]
fn vectorized_all_null_group_yields_null_aggregates() {
    let db = null_db();
    let rs = both(
        &db,
        "SELECT d, SUM(a), AVG(a), MIN(a), MAX(a), MEDIAN(a), STDDEV(a) FROM t \
         WHERE d = 0 GROUP BY d",
    );
    assert_eq!(rs.rows.len(), 1);
    // Group d=0 has only NULL a's: every aggregate is NULL.
    assert_eq!(rs.rows[0][0], Value::Int(0));
    for v in &rs.rows[0][1..] {
        assert!(v.is_null(), "expected NULL, got {v:?}");
    }
}

#[test]
fn vectorized_null_group_key_forms_one_group() {
    let db = null_db();
    let rs = both(
        &db,
        "SELECT d, COUNT(*) FROM t GROUP BY d ORDER BY 2 DESC, 1",
    );
    // Groups: d=0 (2 rows), d=1 (2 rows), d=NULL (1 row).
    assert_eq!(rs.rows.len(), 3);
    let null_group = rs.rows.iter().find(|r| r[0].is_null()).unwrap();
    assert_eq!(null_group[1], Value::Int(1));
}

#[test]
fn vectorized_grand_aggregate_over_empty_selection() {
    let db = null_db();
    let rs = both(&db, "SELECT COUNT(*), SUM(a), MIN(c) FROM t WHERE d = 99");
    assert_eq!(rs.rows, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
}

#[test]
fn vectorized_count_distinct_unifies_int_and_float() {
    // A Float-typed column physically holding Int and Float values
    // (Mixed representation): 1 and 1.0 must count as one value.
    let mut db = Database::new();
    db.create_table("m", Schema::of(&[("x", DataType::Float)]))
        .unwrap();
    db.insert(
        "m",
        vec![
            vec![Value::Int(1)],
            vec![Value::Float(1.0)],
            vec![Value::Float(2.5)],
            vec![Value::Null],
        ],
    )
    .unwrap();
    let rs = both(&db, "SELECT COUNT(DISTINCT x), COUNT(x) FROM m");
    assert_eq!(rs.rows[0], vec![Value::Int(2), Value::Int(3)]);
}

// ---- NaN / negative-zero aggregates (both engines, bit-identical) --------

/// `ResultSet` equality can't check NaN rows (`NaN != NaN`), so compare
/// float cells by bit pattern — which is also the real contract: noise
/// seeding hashes the bits, so the engines must agree *bit for bit*.
fn assert_rows_bit_identical(a: &ResultSet, b: &ResultSet, ctx: &str) {
    assert_eq!(a.columns, b.columns, "columns differ on: {ctx}");
    assert_eq!(a.rows.len(), b.rows.len(), "row counts differ on: {ctx}");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.len(), rb.len());
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "float bits differ ({x:?} vs {y:?}) on: {ctx}"
                    );
                }
                _ => assert_eq!(va, vb, "cells differ on: {ctx}"),
            }
        }
    }
}

/// MEDIAN/STDDEV (and the other float aggregates) over columns holding
/// NaN and ±0.0: both engines — and the morsel-parallel path — must
/// collect argument values in selection-vector order, so `total_cmp`
/// sorting and accumulation produce the same bits everywhere.
#[test]
fn median_stddev_nan_negative_zero_bit_identical() {
    let mk = |b0: f64| {
        build_db(vec![
            (
                Value::Int(1),
                Value::Float(b0),
                Value::str("x"),
                Value::Int(0),
            ),
            (
                Value::Int(2),
                Value::Float(-0.0),
                Value::str("x"),
                Value::Int(0),
            ),
            (
                Value::Int(3),
                Value::Float(0.0),
                Value::str("y"),
                Value::Int(1),
            ),
            (Value::Int(4), Value::Null, Value::str("y"), Value::Int(1)),
            (
                Value::Int(5),
                Value::Float(2.5),
                Value::str("y"),
                Value::Int(1),
            ),
            (
                Value::Int(6),
                Value::Float(-1.5),
                Value::str("z"),
                Value::Int(0),
            ),
        ])
    };
    let queries = [
        "SELECT MEDIAN(b), STDDEV(b), SUM(b), AVG(b), MIN(b), MAX(b) FROM t",
        "SELECT d, MEDIAN(b), STDDEV(b), SUM(b), MIN(b) FROM t GROUP BY d ORDER BY d",
        "SELECT c, MEDIAN(b), MAX(b) FROM t GROUP BY c ORDER BY c",
    ];
    for seed in [f64::NAN, -f64::NAN, -0.0] {
        let db = mk(seed);
        for sql in queries {
            let v = db.execute_sql(sql).unwrap();
            let r = db.execute_sql_row(sql).unwrap();
            assert_rows_bit_identical(&v, &r, sql);
            // Morsel-parallel grouped aggregation on the same fold grid
            // the baselines ran: per-morsel leaf sums concatenated in
            // morsel order must not move a NaN or flip a -0.0.
            db.set_parallelism(4);
            let p = db.execute_sql(sql).unwrap();
            assert_rows_bit_identical(&p, &r, sql);
            db.set_parallelism(1);
        }
    }
    // Pin the -0.0 semantics explicitly: MIN is -0.0 (total_cmp orders it
    // below +0.0) and the even-count median of {-0.0, 0.0} is +0.0.
    // Selection is rows a = 2 (b = -0.0) and a = 3 (b = 0.0); the kernel
    // `b = 0` keeps both (f64 coercion: -0.0 == 0).
    let db = mk(-0.0);
    let rs = db
        .execute_sql("SELECT MIN(b), MEDIAN(b) FROM t WHERE b = 0 AND a >= 2")
        .unwrap();
    let Value::Float(min) = &rs.rows[0][0] else {
        panic!("expected float MIN");
    };
    assert_eq!(min.to_bits(), (-0.0f64).to_bits(), "MIN must keep -0.0");
    let Value::Float(med) = &rs.rows[0][1] else {
        panic!("expected float MEDIAN");
    };
    assert_eq!(med.to_bits(), 0.0f64.to_bits(), "median of {{-0.0, 0.0}}");
}

/// The reduction-tree contract under the nastiest float inputs: with the
/// fold grid pinned at 3-row chunks (pathologically small, so a 33-row
/// table spans 11 leaves), every worker count in {1, 2, 4, 8} must
/// produce bit-identical aggregates — NaN payloads, −0.0 signs and
/// 2^53-boundary rounding included — and the row engine must agree,
/// because all of them fold through the same fixed-shape tree over the
/// same chunk grid. Worker count only changes *scheduling* morsels
/// (2 workers → 6-row morsels, 8 workers → 3-row), never the leaves.
#[test]
fn reduction_tree_bit_identical_across_worker_counts() {
    let two53 = 9_007_199_254_740_992.0f64; // 2^53: above this, f64 skips odd ints
    let b_vals = [
        f64::NAN,
        1.5,
        -0.0,
        two53,
        1.0, // absorbed by 2^53 unless the fold order protects it
        0.0,
        -f64::NAN,
        -two53,
        2.5,
        1e16,
        -1.0,
        1e-16, // vanishes against 1e16 in the wrong association
    ];
    let rows: Vec<_> = (0..33)
        .map(|i| {
            let b = if i % 11 == 7 {
                Value::Null
            } else {
                Value::Float(b_vals[i % b_vals.len()])
            };
            (
                Value::Int(i as i64),
                b,
                Value::str(if i % 2 == 0 { "x" } else { "y" }),
                Value::Int(i as i64 % 3),
            )
        })
        .collect();
    let db = build_db(rows); // fold grid pinned to 3-row chunks
    let queries = [
        "SELECT SUM(b), AVG(b), STDDEV(b), MEDIAN(b), MIN(b), MAX(b) FROM t",
        "SELECT d, SUM(b), AVG(b), STDDEV(b), MEDIAN(b) FROM t GROUP BY d ORDER BY d",
        // Non-dense selection: fold chunks index the post-WHERE
        // selection, not base-table rows.
        "SELECT SUM(b), STDDEV(b), MEDIAN(b) FROM t WHERE a >= 5 AND b > -1",
        "SELECT c, SUM(b), AVG(b) FROM t WHERE d < 2 GROUP BY c ORDER BY c",
    ];
    for sql in queries {
        let baseline = db.execute_sql(sql).unwrap();
        let row_engine = db.execute_sql_row(sql).unwrap();
        assert_rows_bit_identical(&baseline, &row_engine, sql);
        for workers in [2, 4, 8] {
            db.set_parallelism(workers);
            let par = db.execute_sql(sql).unwrap();
            assert_rows_bit_identical(&par, &baseline, &format!("{sql} (workers {workers})"));
            db.set_parallelism(1);
        }
    }
}

// ---- LIMIT/OFFSET and ORDER BY regressions (both engines) ----------------

#[test]
fn limit_with_offset_past_end_is_empty() {
    let db = null_db();
    for sql in [
        "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 40",
        "SELECT a FROM t ORDER BY a LIMIT 0",
        "SELECT d, COUNT(*) FROM t GROUP BY d LIMIT 5 OFFSET 10",
    ] {
        let rs = both(&db, sql);
        assert!(rs.rows.is_empty(), "expected empty result for: {sql}");
    }
}

#[test]
fn limit_offset_slices_after_order_by() {
    let db = build_db(
        (0..6)
            .map(|i| {
                (
                    Value::Int(i),
                    Value::Float(i as f64),
                    Value::str("s"),
                    Value::Int(0),
                )
            })
            .collect(),
    );
    let rs = both(&db, "SELECT a FROM t ORDER BY a DESC LIMIT 2 OFFSET 1");
    assert_eq!(rs.rows, vec![vec![Value::Int(4)], vec![Value::Int(3)]]);
    // OFFSET clamps to the row count rather than panicking.
    let rs = both(&db, "SELECT a FROM t ORDER BY a LIMIT 3 OFFSET 5");
    assert_eq!(rs.rows, vec![vec![Value::Int(5)]]);
}

#[test]
fn order_by_aliased_aggregate_with_limit() {
    let db = null_db();
    let rs = both(
        &db,
        "SELECT d, COUNT(*) AS n FROM t GROUP BY d ORDER BY n DESC, d LIMIT 2",
    );
    assert_eq!(rs.columns, vec!["d", "n"]);
    assert_eq!(rs.rows.len(), 2);
    // Both 2-row groups (d=0, d=1) outrank the NULL singleton.
    assert_eq!(rs.rows[0], vec![Value::Int(0), Value::Int(2)]);
    assert_eq!(rs.rows[1], vec![Value::Int(1), Value::Int(2)]);
}

#[test]
fn int_comparisons_coerce_through_f64_like_sql_cmp() {
    // sql_cmp compares Int-vs-Int through f64, so 2^53 and 2^53+1 are
    // "equal". The vectorized kernel must reproduce that, not exact i64
    // order.
    let two_53 = 9_007_199_254_740_992i64; // 2^53
    let mut db = Database::new();
    db.create_table("big", Schema::of(&[("v", DataType::Int)]))
        .unwrap();
    db.insert(
        "big",
        vec![
            vec![Value::Int(two_53 + 1)],
            vec![Value::Int(two_53)],
            vec![Value::Int(7)],
        ],
    )
    .unwrap();
    let rs = both(&db, &format!("SELECT COUNT(*) FROM big WHERE v = {two_53}"));
    assert_eq!(rs.rows[0][0], Value::Int(2));
    let rs = both(&db, &format!("SELECT COUNT(*) FROM big WHERE v > {two_53}"));
    assert_eq!(rs.rows[0][0], Value::Int(0));
}

/// Audit of the Int64 comparison kernels (`vexec::cmp_predicate`): every
/// `xs[i] as f64` cast is lossy above 2^53, but so is the row engine's
/// own `sql_cmp`, which coerces Int-vs-Int through `as_f64` too — the
/// kernels must reproduce that coercion bit-for-bit on *both* sides of
/// the 2^53 boundary, for negative magnitudes, for Float columns probed
/// with huge Int literals, and for the exact-integer paths (GROUP BY,
/// COUNT(DISTINCT), join keys) that must NOT coerce.
#[test]
fn int_kernels_match_sql_cmp_at_both_2p53_boundaries() {
    let two53 = 9_007_199_254_740_992i64; // 2^53
    let mut db = Database::new();
    db.create_table(
        "big",
        Schema::of(&[("v", DataType::Int), ("f", DataType::Float)]),
    )
    .unwrap();
    db.insert(
        "big",
        vec![
            vec![Value::Int(two53), Value::Float(two53 as f64)],
            vec![Value::Int(two53 + 1), Value::Float(-(two53 as f64))],
            vec![Value::Int(-two53), Value::Float(7.0)],
            vec![Value::Int(-two53 - 1), Value::Null],
            vec![Value::Int(7), Value::Float(0.5)],
        ],
    )
    .unwrap();

    // Positive boundary: 2^53 + 1 rounds to 2^53 as f64, so under f64
    // coercion it equals 2^53 and nothing exceeds it.
    let rs = both(&db, &format!("SELECT COUNT(*) FROM big WHERE v = {two53}"));
    assert_eq!(rs.rows[0][0], Value::Int(2));
    let rs = both(
        &db,
        &format!("SELECT COUNT(*) FROM big WHERE v = {}", two53 + 1),
    );
    assert_eq!(rs.rows[0][0], Value::Int(2));
    let rs = both(&db, &format!("SELECT COUNT(*) FROM big WHERE v > {two53}"));
    assert_eq!(rs.rows[0][0], Value::Int(0));
    // Negative boundary. (Negative literals compile as a unary minus, so
    // this exercises the non-kernel fallback; negative *column values*
    // against positive literals exercise the kernel.)
    let rs = both(
        &db,
        &format!("SELECT COUNT(*) FROM big WHERE v = -{}", two53 + 1),
    );
    assert_eq!(rs.rows[0][0], Value::Int(2));
    let rs = both(
        &db,
        &format!("SELECT COUNT(*) FROM big WHERE v < {}", -two53),
    );
    assert_eq!(rs.rows[0][0], Value::Int(0));
    let rs = both(&db, &format!("SELECT COUNT(*) FROM big WHERE v < {two53}"));
    assert_eq!(rs.rows[0][0], Value::Int(3));
    // Float column probed with a 2^53-adjacent Int literal: the
    // Float64-vs-Int kernel coerces the literal exactly like sql_cmp.
    let rs = both(
        &db,
        &format!("SELECT COUNT(*) FROM big WHERE f = {}", two53 + 1),
    );
    assert_eq!(rs.rows[0][0], Value::Int(1));
    // Exact-integer paths must NOT coerce: 2^53 and 2^53 + 1 stay
    // distinct group/distinct/join keys on both engines.
    let rs = both(&db, "SELECT v, COUNT(*) FROM big GROUP BY v ORDER BY 1");
    assert_eq!(rs.rows.len(), 5);
    let rs = both(&db, "SELECT COUNT(DISTINCT v) FROM big");
    assert_eq!(rs.rows[0][0], Value::Int(5));
    let rs = both(
        &db,
        "SELECT COUNT(*) FROM big x JOIN big y ON x.v = y.v WHERE x.v > 0",
    );
    assert_eq!(rs.rows[0][0], Value::Int(3));
    // And the whole audit holds under morsel-parallel execution too.
    db.set_parallelism(4);
    db.set_morsel_rows(2);
    let rs = both(&db, &format!("SELECT COUNT(*) FROM big WHERE v = {two53}"));
    assert_eq!(rs.rows[0][0], Value::Int(2));
    let rs = both(&db, "SELECT COUNT(DISTINCT v) FROM big");
    assert_eq!(rs.rows[0][0], Value::Int(5));
}

#[test]
fn fallible_conjunct_errors_on_both_engines() {
    // `a = 1` is NULL (not FALSE) on the (NULL, 'x') row, so AND keeps
    // evaluating and `c + 1` errors on the string. Conjunct narrowing
    // must not skip that row and turn the error into an empty result.
    let db = build_db(vec![(
        Value::Null,
        Value::Float(0.0),
        Value::str("x"),
        Value::Int(0),
    )]);
    let sql = "SELECT COUNT(*) FROM t WHERE a = 1 AND c + 1 > 0";
    let v = db.execute_sql(sql);
    let r = db.execute_sql_row(sql);
    assert!(v.is_err(), "vectorized engine must error too, got {v:?}");
    assert!(r.is_err());
}

// ---- LEFT JOIN pushdown correctness ---------------------------------------

/// Fixed two-table dataset with NULL join keys on both sides, duplicate
/// keys, and NULLs in the pushed-predicate columns.
fn join_db() -> Database {
    let mut db = build_db(vec![
        (
            Value::Int(1),
            Value::Float(1.0),
            Value::str("a"),
            Value::Int(0),
        ),
        (
            Value::Int(1),
            Value::Float(2.0),
            Value::str("b"),
            Value::Int(1),
        ),
        (Value::Int(2), Value::Null, Value::str("c"), Value::Int(1)),
        (
            Value::Null,
            Value::Float(0.5),
            Value::str("d"),
            Value::Int(0),
        ),
        (Value::Int(3), Value::Float(1.5), Value::Null, Value::Null),
    ]);
    add_r(
        &mut db,
        vec![
            (Value::Int(1), Value::Int(10), Value::str("a")),
            (Value::Int(1), Value::Null, Value::str("b")),
            (Value::Int(2), Value::Int(5), Value::Null),
            (Value::Null, Value::Int(99), Value::str("z")),
            (Value::Int(4), Value::Int(7), Value::str("q")),
        ],
    );
    db
}

#[test]
fn left_join_where_on_nullable_side_drops_pads() {
    // A WHERE predicate on the right (nullable) side must NOT be pushed
    // below a LEFT JOIN: it filters *after* padding, so NULL-padded rows
    // fail `w > 0` and disappear — making the result identical to the
    // inner join. Pushing it below the join would instead turn filtered
    // left rows into surviving pads.
    let db = join_db();
    let left = both(
        &db,
        "SELECT x.a, x.c, y.w FROM t x LEFT JOIN r y ON x.a = y.a WHERE y.w > 0",
    );
    let inner = both(
        &db,
        "SELECT x.a, x.c, y.w FROM t x JOIN r y ON x.a = y.a WHERE y.w > 0",
    );
    assert_eq!(left.rows, inner.rows);
    assert!(left.rows.iter().all(|r| !r[2].is_null()));
}

#[test]
fn left_join_where_is_null_keeps_pads() {
    // `IS NULL` on the nullable side keeps both genuine NULL matches and
    // NULL-padded unmatched rows — padding semantics must survive the
    // kernel path.
    let db = join_db();
    let rs = both(
        &db,
        "SELECT x.a, x.c, y.w FROM t x LEFT JOIN r y ON x.a = y.a WHERE y.w IS NULL",
    );
    // Matches with w NULL: (1,a)×(1,NULL), (1,b)×(1,NULL); pads: the
    // x.a=3 row and the x.a NULL row.
    assert_eq!(rs.rows.len(), 4);
    let pads = rs
        .rows
        .iter()
        .filter(|r| r[0] == Value::Int(3) || r[0].is_null())
        .count();
    assert_eq!(pads, 2);
}

#[test]
fn left_join_on_right_predicate_pushes_but_keeps_padding() {
    // A right-side predicate in the ON clause only shrinks the match
    // set: left rows whose matches all fail it are padded, never
    // dropped. (This one IS safely pushable to the right scan.)
    let db = join_db();
    let rs = both(
        &db,
        "SELECT x.a, x.b, y.w FROM t x LEFT JOIN r y ON x.a = y.a AND y.w > 5",
    );
    // Every t row survives; only (1,*)×(1,10) actually matches.
    assert_eq!(rs.rows.len(), 5);
    let matched: Vec<_> = rs.rows.iter().filter(|r| !r[2].is_null()).collect();
    assert_eq!(matched.len(), 2);
    assert!(matched.iter().all(|r| r[2] == Value::Int(10)));
}

#[test]
fn left_join_on_left_predicate_pads_instead_of_dropping() {
    // A left-side ON predicate makes failing left rows *unmatchable*,
    // not droppable — they must still appear NULL-padded.
    let db = join_db();
    let rs = both(
        &db,
        "SELECT x.a, x.d, y.w FROM t x LEFT JOIN r y ON x.a = y.a AND x.d = 1",
    );
    // d=1 left rows: a=1 matches twice, a=2 once; the other 3 rows pad.
    assert_eq!(rs.rows.len(), 6);
    // d=1 rows (a=1 and a=2) match; everything else is padded.
    for row in &rs.rows {
        if row[1] == Value::Int(1) {
            assert!(row[0] == Value::Int(1) || row[0] == Value::Int(2));
        } else {
            assert!(row[2].is_null(), "non-d=1 rows must be padded: {row:?}");
        }
    }
}

#[test]
fn inner_join_pushes_where_to_both_sides() {
    let db = join_db();
    let rs = both(
        &db,
        "SELECT COUNT(*) FROM t x JOIN r y ON x.a = y.a WHERE x.d >= 0 AND y.u = 'a'",
    );
    // Pairs on a=1 with u='a': rows (1,0) and (1,1) of t × r row (1,10,'a').
    assert_eq!(rs.rows[0][0], Value::Int(2));
}

#[test]
fn join_null_keys_never_match() {
    let db = join_db();
    let rs = both(&db, "SELECT COUNT(*) FROM t x JOIN r y ON x.a = y.a");
    // a=1: 2×2, a=2: 1×1, a=3/NULL: none; r's NULL key matches nothing.
    assert_eq!(rs.rows[0][0], Value::Int(5));
    let rs = both(
        &db,
        "SELECT COUNT(*) FROM t x LEFT JOIN r y ON x.a = y.a WHERE y.a IS NULL",
    );
    // Unmatched left rows: a=3 and a=NULL.
    assert_eq!(rs.rows[0][0], Value::Int(2));
}

#[test]
fn fallible_join_predicates_error_on_both_engines() {
    // `y.u + 1` type-errors on string values. Whether it sits in the ON
    // residual or the WHERE, the vectorized pipeline must surface the
    // same error the row engine does instead of filtering around it.
    let db = join_db();
    for sql in [
        "SELECT COUNT(*) FROM t x JOIN r y ON x.a = y.a AND y.u + 1 > 0",
        "SELECT COUNT(*) FROM t x JOIN r y ON x.a = y.a WHERE y.u + 1 > 0",
    ] {
        let v = db.execute_sql(sql);
        let r = db.execute_sql_row(sql);
        assert!(
            v.is_err(),
            "vectorized engine must error on {sql}, got {v:?}"
        );
        assert!(r.is_err(), "row engine must error on {sql}");
    }
}

#[test]
fn join_order_by_unprojected_and_late_materialization() {
    // ORDER BY touches an unprojected right column: the live-column
    // analysis must materialize it even though the projection doesn't.
    let db = join_db();
    let rs = both(
        &db,
        "SELECT x.c FROM t x JOIN r y ON x.a = y.a ORDER BY y.w DESC, x.c, y.u",
    );
    assert_eq!(rs.rows.len(), 5);
    assert_eq!(rs.rows[0], vec![Value::str("a")]); // w=10 first
}

// ---- routing sanity -------------------------------------------------------

#[test]
fn vectorized_path_engages_on_supported_shapes() {
    let db = null_db();
    for sql in [
        "SELECT COUNT(*) FROM t WHERE a > 1",
        "SELECT d, SUM(a) FROM t GROUP BY d",
        "SELECT a, c FROM t WHERE c LIKE 'a%' ORDER BY a LIMIT 3",
        "SELECT COUNT(DISTINCT c) FROM t",
        // Two-table equi-joins route through the columnar join pipeline.
        "SELECT COUNT(*) FROM t u JOIN t v ON u.a = v.a",
        "SELECT COUNT(*) FROM t u LEFT JOIN t v ON u.a = v.a WHERE v.d > 1",
        "SELECT u.d, SUM(v.b) FROM t u JOIN t v USING (d) GROUP BY u.d",
        "SELECT COUNT(*) FROM t u JOIN t v ON u.a = v.a AND u.b < v.b",
        // Plan-IR shapes: join trees, outer/cross/non-equi joins,
        // derived tables (standalone and as join leaves), and UNION.
        "SELECT COUNT(*) FROM t u JOIN t v ON u.a = v.a JOIN t w ON v.a = w.a",
        "SELECT COUNT(*) FROM t u RIGHT JOIN t v ON u.a = v.a",
        "SELECT COUNT(*) FROM t u FULL JOIN t v ON u.a = v.a",
        "SELECT COUNT(*) FROM t u CROSS JOIN t v",
        "SELECT COUNT(*) FROM t u JOIN t v ON u.a < v.a",
        "SELECT COUNT(*) FROM (SELECT a FROM t) s",
        "SELECT COUNT(*) FROM t u JOIN (SELECT a FROM t) s ON u.a = s.a",
        "SELECT a FROM t UNION SELECT d FROM t",
        "SELECT a FROM t UNION ALL SELECT d FROM t ORDER BY a LIMIT 5",
    ] {
        let q = parse_query(sql).unwrap();
        assert!(
            flex_db::vexec::try_execute(&db, &q).is_some(),
            "expected vectorized execution for: {sql}"
        );
        assert!(db.routes_vectorized(&q), "routing probe disagrees: {sql}");
    }
}

#[test]
fn vectorized_path_declines_unsupported_shapes() {
    let db = null_db();
    for sql in [
        "WITH x AS (SELECT a FROM t) SELECT COUNT(*) FROM x",
        "SELECT 1 + 2",
        // Residual shapes the plan IR still leaves to the row engine:
        // INTERSECT/EXCEPT, >8-leaf join trees, derived join leaves
        // without a static output shape, unresolvable ON constraints.
        "SELECT a FROM t INTERSECT SELECT d FROM t",
        "SELECT a FROM t EXCEPT SELECT d FROM t",
        "SELECT COUNT(*) FROM t t1 JOIN t t2 ON t1.a = t2.a \
         JOIN t t3 ON t2.a = t3.a JOIN t t4 ON t3.a = t4.a \
         JOIN t t5 ON t4.a = t5.a JOIN t t6 ON t5.a = t6.a \
         JOIN t t7 ON t6.a = t7.a JOIN t t8 ON t7.a = t8.a \
         JOIN t t9 ON t8.a = t9.a",
        "SELECT COUNT(*) FROM t u \
         JOIN (WITH x AS (SELECT a FROM t) SELECT a FROM x) s ON u.a = s.a",
        "SELECT COUNT(*) FROM t u JOIN t v ON u.nope = v.a",
    ] {
        let q = parse_query(sql).unwrap();
        assert!(
            flex_db::vexec::try_execute(&db, &q).is_none(),
            "expected row-engine fallback for: {sql}"
        );
        assert!(!db.routes_vectorized(&q), "routing probe disagrees: {sql}");
    }
}
