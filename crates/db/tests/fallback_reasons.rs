//! One differential test per row-interpreter fallback variant — and one
//! per variant the plan-IR refactor *retired*.
//!
//! The router (`flex_db::vexec::route`) must (a) decline each residual
//! unsupported shape with the *specific* [`FallbackReason`] variant for
//! it — never the `Unknown` placeholder — and (b) still produce results
//! byte-identical to the row interpreter, because routing is an
//! optimization, not a semantics change. Shapes the plan IR now executes
//! (multi-table join trees, derived tables, RIGHT/FULL/CROSS and
//! non-equi joins, UNION) are asserted *vectorized* with exact trace
//! statistics; their enum variants survive only for the residual shapes
//! documented on each variant (and for telemetry label stability).
//!
//! `TableTooLarge` is the one variant without a test: it requires a
//! table of `u32::MAX` rows (the selection-vector NULL sentinel), which
//! no test box can materialize.

use flex_db::{
    DataType, Database, ExecTrace, FallbackReason, JoinOrder, RouteDecision, Schema, Value,
};
use flex_sql::parse_query;

/// Two small tables with enough shape for joins, grouping and set ops.
fn db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("s", DataType::Str),
        ]),
    )
    .unwrap();
    db.create_table(
        "u",
        Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
    )
    .unwrap();
    let t_rows = [
        (1, 10, "x"),
        (2, 20, "y"),
        (2, 25, "x"),
        (3, 30, "z"),
        (5, 50, "y"),
    ]
    .into_iter()
    .map(|(a, b, s)| vec![Value::Int(a), Value::Int(b), Value::str(s)])
    .collect();
    db.insert("t", t_rows).unwrap();
    let u_rows = [(1, 100), (2, 200), (4, 400)]
        .into_iter()
        .map(|(a, c)| vec![Value::Int(a), Value::Int(c)])
        .collect();
    db.insert("u", u_rows).unwrap();
    db
}

/// Assert the routing decision for `sql` is a fallback with exactly
/// `reason`, and that both engines agree byte-for-byte on the result.
fn assert_fallback(sql: &str, reason: FallbackReason) {
    let db = db();
    let q = parse_query(sql).unwrap_or_else(|e| panic!("`{sql}` parses: {e:?}"));
    assert_eq!(
        db.route_decision(&q),
        RouteDecision::Fallback(reason),
        "route decision for `{sql}`"
    );
    // The trace from actually executing agrees with the planning-only
    // decision, and the fallback still answers correctly.
    let (trace, result) = db.execute_traced(&q);
    assert_eq!(
        trace.route,
        RouteDecision::Fallback(reason),
        "trace for `{sql}`"
    );
    let vec_result = result.unwrap_or_else(|e| panic!("`{sql}` executes: {e:?}"));
    let row_result = db
        .execute_row(&q)
        .unwrap_or_else(|e| panic!("`{sql}` executes on row engine: {e:?}"));
    assert_eq!(vec_result, row_result, "engines differ on `{sql}`");
}

/// Assert `sql` routes vectorized, executes with exactly the expected
/// trace statistics, and matches the row interpreter byte-for-byte.
fn assert_vectorized(sql: &str, expect: ExecTrace) {
    let db = db();
    let q = parse_query(sql).unwrap_or_else(|e| panic!("`{sql}` parses: {e:?}"));
    assert_eq!(
        db.route_decision(&q),
        RouteDecision::Vectorized,
        "route decision for `{sql}`"
    );
    let (trace, result) = db.execute_traced(&q);
    let rs = result.unwrap_or_else(|e| panic!("`{sql}` executes: {e:?}"));
    assert_eq!(
        trace,
        ExecTrace {
            rows_emitted: rs.rows.len() as u64,
            ..expect
        },
        "trace stats for `{sql}`"
    );
    let row_result = db
        .execute_row(&q)
        .unwrap_or_else(|e| panic!("`{sql}` executes on row engine: {e:?}"));
    assert_eq!(rs, row_result, "engines differ on `{sql}`");
}

/// A vectorized trace skeleton (route pinned, `rows_emitted` filled in
/// by [`assert_vectorized`]).
fn vec_trace(morsels: u64, rows_scanned: u64, join_order: JoinOrder) -> ExecTrace {
    ExecTrace {
        route: RouteDecision::Vectorized,
        topk: false,
        morsels,
        workers: 1,
        rows_scanned,
        rows_emitted: 0,
        join_order,
    }
}

#[test]
fn cte_falls_back() {
    assert_fallback(
        "WITH c AS (SELECT a, b FROM t WHERE b > 10) SELECT COUNT(*) FROM c",
        FallbackReason::Cte,
    );
}

/// UNION and UNION ALL vectorize (columnar concatenation + the existing
/// DISTINCT machinery); `SetOperation` remains only for INTERSECT /
/// EXCEPT and statically unanalyzable union shapes.
#[test]
fn union_routes_vectorized_with_stats() {
    // t (5 rows, 1 morsel) + u (3 rows, 1 morsel), no joins anywhere.
    assert_vectorized(
        "SELECT a FROM t UNION SELECT a FROM u",
        vec_trace(2, 8, JoinOrder::default()),
    );
    assert_vectorized(
        "SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a LIMIT 4",
        vec_trace(2, 8, JoinOrder::default()),
    );
}

#[test]
fn set_operation_falls_back() {
    assert_fallback(
        "SELECT a FROM t INTERSECT SELECT a FROM u",
        FallbackReason::SetOperation,
    );
    assert_fallback(
        "SELECT a FROM t EXCEPT SELECT a FROM u",
        FallbackReason::SetOperation,
    );
}

#[test]
fn table_less_select_falls_back() {
    assert_fallback("SELECT 1", FallbackReason::TableLess);
}

/// RIGHT/FULL joins (matched-bit padding) and CROSS joins (nested-loop
/// morsels) vectorize; `UnsupportedJoinType` is fully retired and kept
/// only so telemetry exposition labels stay complete.
#[test]
fn outer_and_cross_joins_route_vectorized_with_stats() {
    let one_join = JoinOrder {
        joins: 1,
        swapped: 0,
    };
    assert_vectorized(
        "SELECT COUNT(*) FROM t RIGHT JOIN u ON t.a = u.a",
        vec_trace(2, 8, one_join),
    );
    assert_vectorized(
        "SELECT COUNT(*) FROM t FULL JOIN u ON t.a = u.a",
        vec_trace(2, 8, one_join),
    );
    assert_vectorized(
        "SELECT COUNT(*) FROM t CROSS JOIN u",
        vec_trace(2, 8, one_join),
    );
}

/// Join trees up to eight leaves vectorize, with the greedy
/// smallest-estimated-input-first build-side choice recorded in
/// `join_order` (pure scheduling — result bytes never depend on it).
#[test]
fn multi_table_join_routes_vectorized_with_stats() {
    // Join 0 builds on u (right, 3 rows ≥ probe side 5: unswapped);
    // join 1's left input is the 3 surviving pairs, smaller than the
    // 5-row right leaf, so the build swaps onto it (bit 1 set).
    assert_vectorized(
        "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a JOIN t v ON u.a = v.a",
        vec_trace(
            3,
            13,
            JoinOrder {
                joins: 2,
                swapped: 0b10,
            },
        ),
    );
}

/// The residual `MultiTableJoin` shape: more than eight leaves.
#[test]
fn nine_leaf_join_tree_falls_back() {
    let mut sql = String::from("SELECT COUNT(*) FROM t t1");
    for i in 2..=9 {
        sql.push_str(&format!(" JOIN t t{i} ON t{}.a = t{i}.a", i - 1));
    }
    assert_fallback(&sql, FallbackReason::MultiTableJoin);
}

/// Derived tables in FROM vectorize — the subquery executes first and
/// its result columnarizes into the outer block's scan.
#[test]
fn derived_table_routes_vectorized_with_stats() {
    // The outer block scans the 4 materialized subquery rows; the inner
    // query's own execution is traced separately.
    assert_vectorized(
        "SELECT COUNT(*) FROM (SELECT a FROM t WHERE b > 10) d",
        vec_trace(1, 4, JoinOrder::default()),
    );
}

/// The residual `DerivedTable` shape: a derived *join leaf* whose
/// subquery has no statically known output shape (here: it needs CTE
/// resolution), so the tree planner cannot type its scan.
#[test]
fn unanalyzable_derived_join_leaf_falls_back() {
    assert_fallback(
        "SELECT COUNT(*) FROM (WITH c AS (SELECT a FROM t) SELECT a FROM c) d \
         JOIN u ON d.a = u.a",
        FallbackReason::DerivedTable,
    );
}

/// Non-equi joins vectorize as nested-loop morsels with the shared
/// scalar interpreter evaluating the ON residual per candidate pair.
#[test]
fn non_equi_join_routes_vectorized_with_stats() {
    assert_vectorized(
        "SELECT COUNT(*) FROM t JOIN u ON t.a < u.a",
        vec_trace(
            2,
            8,
            JoinOrder {
                joins: 1,
                swapped: 0,
            },
        ),
    );
}

/// The residual `NonEquiJoin` shape: ON/WHERE compilation fails at plan
/// time (here: an unknown column), and the row engine re-derives the
/// identical error.
#[test]
fn unresolvable_join_constraint_falls_back() {
    let db = db();
    let q = parse_query("SELECT COUNT(*) FROM t JOIN u ON t.nope = u.a").unwrap();
    assert_eq!(
        db.route_decision(&q),
        RouteDecision::Fallback(FallbackReason::NonEquiJoin)
    );
    let (trace, vec_err) = db.execute_traced(&q);
    assert_eq!(
        trace.route,
        RouteDecision::Fallback(FallbackReason::NonEquiJoin)
    );
    let row_err = db.execute_row(&q);
    assert!(vec_err.is_err() && row_err.is_err());
    assert_eq!(
        format!("{:?}", vec_err.unwrap_err()),
        format!("{:?}", row_err.unwrap_err()),
        "both engines must report the same error"
    );
}

/// An unknown table is a routing decline (`UnknownTable`) and an
/// identical *error* on both engines — the fallback must not change
/// what the user sees.
#[test]
fn unknown_table_falls_back_and_errors_identically() {
    let db = db();
    let q = parse_query("SELECT COUNT(*) FROM missing").unwrap();
    assert_eq!(
        db.route_decision(&q),
        RouteDecision::Fallback(FallbackReason::UnknownTable)
    );
    let (trace, vec_err) = db.execute_traced(&q);
    assert_eq!(
        trace.route,
        RouteDecision::Fallback(FallbackReason::UnknownTable)
    );
    let row_err = db.execute_row(&q);
    assert!(vec_err.is_err() && row_err.is_err());
    assert_eq!(
        format!("{:?}", vec_err.unwrap_err()),
        format!("{:?}", row_err.unwrap_err()),
        "both engines must report the same error"
    );
}

/// Control: a plain supported shape routes vectorized — the taxonomy
/// must not misfire on the fast path — and the trace carries real
/// execution statistics.
#[test]
fn supported_shape_routes_vectorized_with_stats() {
    assert_vectorized(
        "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a",
        vec_trace(1, 5, JoinOrder::default()),
    );
}

/// The default/placeholder variant: `Unknown` exists so zero-valued
/// telemetry has a stable slot, but the router must never return it —
/// every decline in this suite and every variant in `ALL` names a
/// concrete cause.
#[test]
fn taxonomy_is_complete_and_labeled() {
    assert_eq!(FallbackReason::ALL.len(), 10);
    // Indexes are dense and stable (telemetry uses them as array slots).
    for (i, reason) in FallbackReason::ALL.iter().enumerate() {
        assert_eq!(reason.index(), i);
        assert!(!reason.as_str().is_empty());
    }
    // Labels are unique (Prometheus label cardinality depends on it).
    let mut labels: Vec<&str> = FallbackReason::ALL.iter().map(|r| r.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), FallbackReason::ALL.len());
    assert_eq!(RouteDecision::Vectorized.as_str(), "vectorized");
    assert_eq!(
        RouteDecision::Fallback(FallbackReason::Cte).fallback_reason(),
        Some(FallbackReason::Cte)
    );
    assert_eq!(RouteDecision::Vectorized.fallback_reason(), None);
}
