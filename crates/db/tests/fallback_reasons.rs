//! One differential test per row-interpreter fallback variant.
//!
//! The router (`flex_db::vexec::route`) must (a) decline each
//! unsupported shape with the *specific* [`FallbackReason`] variant for
//! it — never the `Unknown` placeholder — and (b) still produce results
//! byte-identical to the row interpreter, because routing is an
//! optimization, not a semantics change. Each test pins one variant to a
//! concrete query shape, asserts the route decision through the public
//! [`Database::route_decision`] / [`Database::execute_traced`] API, and
//! compares both engines' `ResultSet`s.
//!
//! `TableTooLarge` is the one variant without a test: it requires a
//! table of `u32::MAX` rows (the selection-vector NULL sentinel), which
//! no test box can materialize.

use flex_db::{DataType, Database, ExecTrace, FallbackReason, RouteDecision, Schema, Value};
use flex_sql::parse_query;

/// Two small tables with enough shape for joins, grouping and set ops.
fn db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("s", DataType::Str),
        ]),
    )
    .unwrap();
    db.create_table(
        "u",
        Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
    )
    .unwrap();
    let t_rows = [
        (1, 10, "x"),
        (2, 20, "y"),
        (2, 25, "x"),
        (3, 30, "z"),
        (5, 50, "y"),
    ]
    .into_iter()
    .map(|(a, b, s)| vec![Value::Int(a), Value::Int(b), Value::str(s)])
    .collect();
    db.insert("t", t_rows).unwrap();
    let u_rows = [(1, 100), (2, 200), (4, 400)]
        .into_iter()
        .map(|(a, c)| vec![Value::Int(a), Value::Int(c)])
        .collect();
    db.insert("u", u_rows).unwrap();
    db
}

/// Assert the routing decision for `sql` is a fallback with exactly
/// `reason`, and that both engines agree byte-for-byte on the result.
fn assert_fallback(sql: &str, reason: FallbackReason) {
    let db = db();
    let q = parse_query(sql).unwrap_or_else(|e| panic!("`{sql}` parses: {e:?}"));
    assert_eq!(
        db.route_decision(&q),
        RouteDecision::Fallback(reason),
        "route decision for `{sql}`"
    );
    // The trace from actually executing agrees with the planning-only
    // decision, and the fallback still answers correctly.
    let (trace, result) = db.execute_traced(&q);
    assert_eq!(
        trace.route,
        RouteDecision::Fallback(reason),
        "trace for `{sql}`"
    );
    let vec_result = result.unwrap_or_else(|e| panic!("`{sql}` executes: {e:?}"));
    let row_result = db
        .execute_row(&q)
        .unwrap_or_else(|e| panic!("`{sql}` executes on row engine: {e:?}"));
    assert_eq!(vec_result, row_result, "engines differ on `{sql}`");
}

#[test]
fn cte_falls_back() {
    assert_fallback(
        "WITH c AS (SELECT a, b FROM t WHERE b > 10) SELECT COUNT(*) FROM c",
        FallbackReason::Cte,
    );
}

#[test]
fn set_operation_falls_back() {
    assert_fallback(
        "SELECT a FROM t UNION SELECT a FROM u",
        FallbackReason::SetOperation,
    );
}

#[test]
fn table_less_select_falls_back() {
    assert_fallback("SELECT 1", FallbackReason::TableLess);
}

#[test]
fn unsupported_join_type_falls_back() {
    assert_fallback(
        "SELECT COUNT(*) FROM t RIGHT JOIN u ON t.a = u.a",
        FallbackReason::UnsupportedJoinType,
    );
    assert_fallback(
        "SELECT COUNT(*) FROM t FULL JOIN u ON t.a = u.a",
        FallbackReason::UnsupportedJoinType,
    );
    assert_fallback(
        "SELECT COUNT(*) FROM t CROSS JOIN u",
        FallbackReason::UnsupportedJoinType,
    );
}

#[test]
fn multi_table_join_falls_back() {
    assert_fallback(
        "SELECT COUNT(*) FROM t JOIN u ON t.a = u.a JOIN t v ON u.a = v.a",
        FallbackReason::MultiTableJoin,
    );
}

#[test]
fn derived_table_falls_back() {
    assert_fallback(
        "SELECT COUNT(*) FROM (SELECT a FROM t WHERE b > 10) d",
        FallbackReason::DerivedTable,
    );
}

#[test]
fn non_equi_join_falls_back() {
    assert_fallback(
        "SELECT COUNT(*) FROM t JOIN u ON t.a < u.a",
        FallbackReason::NonEquiJoin,
    );
}

/// An unknown table is a routing decline (`UnknownTable`) and an
/// identical *error* on both engines — the fallback must not change
/// what the user sees.
#[test]
fn unknown_table_falls_back_and_errors_identically() {
    let db = db();
    let q = parse_query("SELECT COUNT(*) FROM missing").unwrap();
    assert_eq!(
        db.route_decision(&q),
        RouteDecision::Fallback(FallbackReason::UnknownTable)
    );
    let (trace, vec_err) = db.execute_traced(&q);
    assert_eq!(
        trace.route,
        RouteDecision::Fallback(FallbackReason::UnknownTable)
    );
    let row_err = db.execute_row(&q);
    assert!(vec_err.is_err() && row_err.is_err());
    assert_eq!(
        format!("{:?}", vec_err.unwrap_err()),
        format!("{:?}", row_err.unwrap_err()),
        "both engines must report the same error"
    );
}

/// Control: a plain supported shape routes vectorized — the taxonomy
/// must not misfire on the fast path — and the trace carries real
/// execution statistics.
#[test]
fn supported_shape_routes_vectorized_with_stats() {
    let db = db();
    let q = parse_query("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a").unwrap();
    assert_eq!(db.route_decision(&q), RouteDecision::Vectorized);
    let (trace, result) = db.execute_traced(&q);
    let rs = result.unwrap();
    assert_eq!(
        trace,
        ExecTrace {
            route: RouteDecision::Vectorized,
            topk: false,
            morsels: 1,
            workers: 1,
            rows_scanned: 5,
            rows_emitted: rs.rows.len() as u64,
        }
    );
    assert_eq!(rs, db.execute_row(&q).unwrap());
}

/// The default/placeholder variant: `Unknown` exists so zero-valued
/// telemetry has a stable slot, but the router must never return it —
/// every decline in this suite and every variant in `ALL` names a
/// concrete cause.
#[test]
fn taxonomy_is_complete_and_labeled() {
    assert_eq!(FallbackReason::ALL.len(), 10);
    // Indexes are dense and stable (telemetry uses them as array slots).
    for (i, reason) in FallbackReason::ALL.iter().enumerate() {
        assert_eq!(reason.index(), i);
        assert!(!reason.as_str().is_empty());
    }
    // Labels are unique (Prometheus label cardinality depends on it).
    let mut labels: Vec<&str> = FallbackReason::ALL.iter().map(|r| r.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), FallbackReason::ALL.len());
    assert_eq!(RouteDecision::Vectorized.as_str(), "vectorized");
    assert_eq!(
        RouteDecision::Fallback(FallbackReason::Cte).fallback_reason(),
        Some(FallbackReason::Cte)
    );
    assert_eq!(RouteDecision::Vectorized.fallback_reason(), None);
}
