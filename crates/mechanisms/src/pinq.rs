//! PINQ (McSherry, SIGMOD 2009) — Privacy Integrated Queries.
//!
//! PINQ's counting queries add `Lap(1/ε)` noise. Its join is *restricted*:
//! records are grouped by join key, and one output group is produced per
//! matching key. A count over the join therefore counts **unique matched
//! join keys**, not joined pairs — for one-to-one joins this matches the
//! standard semantics; for one-to-many and many-to-many joins it does not
//! (paper §2.3, Table 1).

use flex_db::{Row, Table, Value, ValueKey};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// An unweighted protected dataset in the PINQ style.
#[derive(Debug, Clone, PartialEq)]
pub struct PinqDataset {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl PinqDataset {
    pub fn from_table(table: &Table) -> Self {
        PinqDataset {
            columns: table
                .schema
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect(),
            rows: table.rows.clone(),
        }
    }

    fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("unknown PINQ column `{name}`"))
    }

    /// `Where` (stable, c = 1).
    pub fn where_<F: Fn(&Row) -> bool>(&self, pred: F) -> PinqDataset {
        PinqDataset {
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// PINQ's restricted join: one output record per join key present on
    /// both sides (the groups themselves are kept opaque).
    pub fn restricted_join(&self, key: &str, other: &PinqDataset, other_key: &str) -> PinqDataset {
        let ki = self.col(key);
        let kj = other.col(other_key);
        let left: HashSet<ValueKey> = self
            .rows
            .iter()
            .filter(|r| !r[ki].is_null())
            .map(|r| ValueKey::from(&r[ki]))
            .collect();
        let mut seen = HashSet::new();
        let mut rows = Vec::new();
        for r in &other.rows {
            if r[kj].is_null() {
                continue;
            }
            let k = ValueKey::from(&r[kj]);
            if left.contains(&k) && seen.insert(k) {
                rows.push(vec![r[kj].clone()]);
            }
        }
        PinqDataset {
            columns: vec![format!("{key}_matched")],
            rows,
        }
    }

    /// `NoisyCount`: row count + `Lap(1/ε)`.
    pub fn noisy_count<R: Rng + ?Sized>(&self, epsilon: f64, rng: &mut R) -> f64 {
        self.rows.len() as f64 + flex_core::laplace(rng, 1.0 / epsilon)
    }

    /// Histogram via PINQ's `Partition` operator: disjoint bins each get
    /// the full ε (parallel composition).
    pub fn partition_count<R: Rng + ?Sized>(
        &self,
        key: &str,
        bins: &[Value],
        epsilon: f64,
        rng: &mut R,
    ) -> Vec<(Value, f64)> {
        let ki = self.col(key);
        let mut counts: HashMap<ValueKey, usize> = HashMap::new();
        for r in &self.rows {
            *counts.entry(ValueKey::from(&r[ki])).or_default() += 1;
        }
        bins.iter()
            .map(|bin| {
                let c = counts.get(&ValueKey::from(bin)).copied().unwrap_or(0);
                (
                    bin.clone(),
                    c as f64 + flex_core::laplace(rng, 1.0 / epsilon),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_db::{DataType, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn orders() -> Table {
        let mut t = Table::new(
            "orders",
            Schema::of(&[("id", DataType::Int), ("cust", DataType::Int)]),
        );
        t.insert_all(vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(10)],
            vec![Value::Int(3), Value::Int(11)],
            vec![Value::Int(4), Value::Int(12)],
        ])
        .unwrap();
        t
    }

    fn custs() -> Table {
        let mut t = Table::new("custs", Schema::of(&[("id", DataType::Int)]));
        t.insert_all(vec![
            vec![Value::Int(10)],
            vec![Value::Int(11)],
            vec![Value::Int(99)],
        ])
        .unwrap();
        t
    }

    #[test]
    fn restricted_join_counts_unique_keys_not_pairs() {
        let o = PinqDataset::from_table(&orders());
        let c = PinqDataset::from_table(&custs());
        let j = o.restricted_join("cust", &c, "id");
        // Keys 10 and 11 match; a standard join would produce 3 rows, the
        // restricted join produces 2.
        assert_eq!(j.rows.len(), 2);
    }

    #[test]
    fn noisy_count_near_truth() {
        let o = PinqDataset::from_table(&orders());
        let mut rng = StdRng::seed_from_u64(4);
        let mut mean = 0.0;
        for _ in 0..1000 {
            mean += o.noisy_count(1.0, &mut rng);
        }
        mean /= 1000.0;
        assert!((mean - 4.0).abs() < 0.2);
    }

    #[test]
    fn partition_counts_bins() {
        let o = PinqDataset::from_table(&orders());
        let mut rng = StdRng::seed_from_u64(4);
        let out = o.partition_count(
            "cust",
            &[Value::Int(10), Value::Int(12), Value::Int(77)],
            10.0,
            &mut rng,
        );
        assert!((out[0].1 - 2.0).abs() < 1.5);
        assert!((out[1].1 - 1.0).abs() < 1.5);
        assert!(out[2].1.abs() < 1.5);
    }

    #[test]
    fn where_filters() {
        let o = PinqDataset::from_table(&orders()).where_(|r| r[1] == Value::Int(10));
        assert_eq!(o.rows.len(), 2);
    }
}
