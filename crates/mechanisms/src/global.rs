//! The naive global-sensitivity Laplace mechanism (Dwork et al., TCC 2006).
//!
//! Counting queries without joins have global sensitivity 1 under bounded
//! differential privacy; queries with joins have **unbounded** global
//! sensitivity ("a join has the ability to multiply input records" —
//! McSherry, quoted in paper §3.1), so this baseline must reject them.

use flex_core::relalg::Rel;
use rand::Rng;

/// Global sensitivity of a counting query over `rel`, or `None` when it is
/// unbounded (any join of protected relations).
pub fn global_sensitivity(rel: &Rel) -> Option<f64> {
    match rel {
        Rel::Table { public, .. } => Some(if *public { 0.0 } else { 1.0 }),
        Rel::Project(r) | Rel::Select(r) => global_sensitivity(r),
        Rel::Count(_) => Some(1.0),
        Rel::Join { left, right, .. } => {
            let sl = global_sensitivity(left)?;
            let sr = global_sensitivity(right)?;
            // A join where one side is entirely public merely replicates
            // private rows a data-independent number of times — but that
            // number is unbounded over all databases too, unless the
            // public side is fixed. We treat public-side joins as
            // unbounded as well, matching the classical treatment; only
            // fully public joins are trivially 0.
            if sl == 0.0 && sr == 0.0 {
                Some(0.0)
            } else {
                None
            }
        }
    }
}

/// Release a count with `Lap(s/ε)` noise (pure ε-DP).
pub fn noisy_count<R: Rng + ?Sized>(
    true_count: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    true_count + flex_core::laplace(rng, sensitivity / epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_core::relalg::Attr;

    fn table(name: &str, occ: usize, public: bool) -> Rel {
        Rel::Table {
            name: name.to_string(),
            occurrence: occ,
            public,
        }
    }

    fn attr(occ: usize) -> Attr {
        Attr {
            occurrence: occ,
            table: "t".to_string(),
            column: "c".to_string(),
        }
    }

    #[test]
    fn plain_count_is_one() {
        assert_eq!(global_sensitivity(&table("t", 0, false)), Some(1.0));
        assert_eq!(
            global_sensitivity(&Rel::Select(Box::new(table("t", 0, false)))),
            Some(1.0)
        );
    }

    #[test]
    fn join_is_unbounded() {
        let j = Rel::Join {
            left: Box::new(table("a", 0, false)),
            right: Box::new(table("b", 1, false)),
            left_key: attr(0),
            right_key: attr(1),
        };
        assert_eq!(global_sensitivity(&j), None);
    }

    #[test]
    fn fully_public_join_is_zero() {
        let j = Rel::Join {
            left: Box::new(table("a", 0, true)),
            right: Box::new(table("b", 1, true)),
            left_key: attr(0),
            right_key: attr(1),
        };
        assert_eq!(global_sensitivity(&j), Some(0.0));
    }
}
