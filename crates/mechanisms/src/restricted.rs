//! Restricted sensitivity (Blocki, Blum, Datta & Sheffet, ITCS 2013).
//!
//! Bounds the **global** sensitivity of counting queries with joins by
//! assuming an externally-declared data model: a global bound on the
//! frequency of every join key (for all possible future databases). This
//! works when every join has a "one" side whose key frequency is globally
//! bounded — one-to-one and one-to-many joins — but **cannot** handle
//! many-to-many joins, whose key frequencies are unbounded on both sides
//! (paper §2.3, Table 1).

use flex_core::relalg::Rel;
use rand::Rng;

/// A declared global frequency bound for a `(table, column)` pair: the
/// maximum number of times any key value may ever appear. `None` means
/// unbounded.
pub trait FrequencyBounds {
    fn bound(&self, table: &str, column: &str) -> Option<u64>;
}

/// Frequency bounds backed by a static list.
#[derive(Debug, Clone, Default)]
pub struct StaticBounds {
    entries: Vec<(String, String, u64)>,
}

impl StaticBounds {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(mut self, table: &str, column: &str, bound: u64) -> Self {
        self.entries
            .push((table.to_string(), column.to_string(), bound));
        self
    }
}

impl FrequencyBounds for StaticBounds {
    fn bound(&self, table: &str, column: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(t, c, _)| t == table && c == column)
            .map(|(_, _, b)| *b)
    }
}

/// Why restricted sensitivity fails for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestrictedError {
    /// A join is many-to-many under the declared bounds (both sides have
    /// no bound or a bound > 1 with no unique side).
    ManyToManyJoin { left: String, right: String },
    /// A key has no declared bound at all.
    MissingBound { table: String, column: String },
    /// Join keys drawn from aggregation outputs are unsupported.
    OpaqueJoinKey,
}

/// Compute the restricted (global) sensitivity of a counting query over
/// `rel`, under declared per-key global frequency bounds.
///
/// The recursion mirrors elastic stability but uses global bounds and no
/// distance term: a join multiplies the stability of the changing side by
/// the global bound of the *other* side's key, which must therefore be
/// bounded; if both sides can change (self join), both products plus the
/// cross term appear.
pub fn restricted_sensitivity<B: FrequencyBounds>(
    rel: &Rel,
    bounds: &B,
) -> Result<f64, RestrictedError> {
    match rel {
        Rel::Table { public, .. } => Ok(if *public { 0.0 } else { 1.0 }),
        Rel::Project(r) | Rel::Select(r) => restricted_sensitivity(r, bounds),
        Rel::Count(_) => Ok(1.0),
        Rel::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let sl = restricted_sensitivity(left, bounds)?;
            let sr = restricted_sensitivity(right, bounds)?;
            let bl = bounds.bound(&left_key.table, &left_key.column);
            let br = bounds.bound(&right_key.table, &right_key.column);
            // A side is a "one" side when its key is globally unique.
            let left_unique = bl == Some(1);
            let right_unique = br == Some(1);
            if !left_unique && !right_unique {
                return Err(RestrictedError::ManyToManyJoin {
                    left: format!("{left_key}"),
                    right: format!("{right_key}"),
                });
            }
            let overlap = left
                .ancestors()
                .intersection(&right.ancestors())
                .next()
                .is_some();
            let bl = bl.ok_or(RestrictedError::MissingBound {
                table: left_key.table.clone(),
                column: left_key.column.clone(),
            })? as f64;
            let br = br.ok_or(RestrictedError::MissingBound {
                table: right_key.table.clone(),
                column: right_key.column.clone(),
            })? as f64;
            if overlap {
                Ok(bl * sr + br * sl + sl * sr)
            } else {
                Ok((bl * sr).max(br * sl))
            }
        }
    }
}

/// A counting query released with restricted sensitivity: global
/// sensitivity `s` gives pure ε-DP with `Lap(s/ε)` noise.
pub fn noisy_count<R: Rng + ?Sized>(
    true_count: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    true_count + flex_core::laplace(rng, sensitivity / epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_core::relalg::Attr;

    fn table(name: &str, occ: usize) -> Rel {
        Rel::Table {
            name: name.to_string(),
            occurrence: occ,
            public: false,
        }
    }

    fn attr(occ: usize, t: &str, c: &str) -> Attr {
        Attr {
            occurrence: occ,
            table: t.to_string(),
            column: c.to_string(),
        }
    }

    fn join(l: Rel, r: Rel, lk: Attr, rk: Attr) -> Rel {
        Rel::Join {
            left: Box::new(l),
            right: Box::new(r),
            left_key: lk,
            right_key: rk,
        }
    }

    #[test]
    fn table_has_sensitivity_one() {
        let b = StaticBounds::new();
        assert_eq!(restricted_sensitivity(&table("t", 0), &b).unwrap(), 1.0);
    }

    #[test]
    fn one_to_many_join_bounded() {
        // orders.cust (bound 50) joins custs.id (unique).
        let b = StaticBounds::new()
            .with("orders", "cust", 50)
            .with("custs", "id", 1);
        let rel = join(
            table("orders", 0),
            table("custs", 1),
            attr(0, "orders", "cust"),
            attr(1, "custs", "id"),
        );
        // max(50·1, 1·1) = 50.
        assert_eq!(restricted_sensitivity(&rel, &b).unwrap(), 50.0);
    }

    #[test]
    fn many_to_many_rejected() {
        let b = StaticBounds::new().with("a", "k", 10).with("b", "k", 20);
        let rel = join(
            table("a", 0),
            table("b", 1),
            attr(0, "a", "k"),
            attr(1, "b", "k"),
        );
        assert!(matches!(
            restricted_sensitivity(&rel, &b),
            Err(RestrictedError::ManyToManyJoin { .. })
        ));
    }

    #[test]
    fn unbounded_key_rejected() {
        let b = StaticBounds::new().with("a", "k", 1);
        let rel = join(
            table("a", 0),
            table("b", 1),
            attr(0, "a", "k"),
            attr(1, "b", "k"),
        );
        // b.k has no declared bound → many-to-many check fails first only
        // if a side is unique; here left is unique so we need b's bound.
        assert!(matches!(
            restricted_sensitivity(&rel, &b),
            Err(RestrictedError::MissingBound { .. })
        ));
    }

    #[test]
    fn self_join_sums_terms() {
        let b = StaticBounds::new().with("e", "k", 1);
        let rel = join(
            table("e", 0),
            table("e", 1),
            attr(0, "e", "k"),
            attr(1, "e", "k"),
        );
        // 1·1 + 1·1 + 1·1 = 3.
        assert_eq!(restricted_sensitivity(&rel, &b).unwrap(), 3.0);
    }
}
