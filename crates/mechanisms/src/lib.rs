//! # flex-mechanisms
//!
//! Baseline general-purpose differential-privacy mechanisms with join
//! support, implemented for the paper's comparisons (Table 1 and §5.5):
//!
//! * [`wpinq`] — weighted PINQ: weight-rescaling joins, `Lap(1/ε)` noisy
//!   counts over total weight. Supports all join relationships; requires a
//!   custom runtime (fails paper Requirement 1).
//! * [`pinq`] — PINQ's restricted key-grouping join: counts unique join
//!   keys, so only one-to-one joins have standard semantics.
//! * [`restricted`] — restricted sensitivity: global per-key frequency
//!   bounds; handles one-to-one/one-to-many joins, rejects many-to-many.
//! * [`global`] — the naive global-sensitivity Laplace mechanism: rejects
//!   all joins of protected tables.

pub mod global;
pub mod pinq;
pub mod restricted;
pub mod wpinq;

pub use pinq::PinqDataset;
pub use restricted::{restricted_sensitivity, FrequencyBounds, RestrictedError, StaticBounds};
pub use wpinq::WeightedDataset;

/// The feature matrix of paper Table 1, decided by the mechanisms' actual
/// capabilities as implemented in this crate and in `flex-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismFeatures {
    pub name: &'static str,
    /// Requirement 1: runs against unmodified databases.
    pub database_compatibility: bool,
    pub one_to_one_equijoin: bool,
    pub one_to_many_equijoin: bool,
    pub many_to_many_equijoin: bool,
}

/// The rows of Table 1.
pub fn table1_features() -> Vec<MechanismFeatures> {
    vec![
        MechanismFeatures {
            name: "PINQ",
            database_compatibility: false,
            one_to_one_equijoin: true,
            one_to_many_equijoin: false,
            many_to_many_equijoin: false,
        },
        MechanismFeatures {
            name: "wPINQ",
            database_compatibility: false,
            one_to_one_equijoin: true,
            one_to_many_equijoin: true,
            many_to_many_equijoin: true,
        },
        MechanismFeatures {
            name: "Restricted sensitivity",
            database_compatibility: false,
            one_to_one_equijoin: true,
            one_to_many_equijoin: true,
            many_to_many_equijoin: false,
        },
        MechanismFeatures {
            name: "DJoin",
            database_compatibility: false,
            one_to_one_equijoin: true,
            one_to_many_equijoin: false,
            many_to_many_equijoin: false,
        },
        MechanismFeatures {
            name: "Elastic sensitivity (FLEX)",
            database_compatibility: true,
            one_to_one_equijoin: true,
            one_to_many_equijoin: true,
            many_to_many_equijoin: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1_features();
        assert_eq!(rows.len(), 5);
        let flex = rows.last().unwrap();
        assert!(flex.database_compatibility);
        assert!(flex.many_to_many_equijoin);
        let pinq = &rows[0];
        assert!(!pinq.database_compatibility);
        assert!(!pinq.one_to_many_equijoin);
    }
}
