//! Weighted PINQ (Proserpio, Goldberg & McSherry, VLDB 2014) — the
//! baseline FLEX is compared against in paper §5.5.
//!
//! wPINQ attaches a real-valued weight to every record. Transformations
//! manipulate weights so that the *weighted* sensitivity of any pipeline
//! is at most 1; a noisy count is then the total weight plus `Lap(1/ε)`
//! noise. The crucial operator is the equijoin, which scales the weight of
//! each output pair `(a, b)` with key `k` to
//! `w(a)·w(b) / (Σ_A(k) + Σ_B(k))`, where `Σ_X(k)` is the total weight of
//! key `k` on side `X`. This supports one-to-one, one-to-many and
//! many-to-many joins alike — at the cost of down-weighting (and thus
//! biasing) counts over skewed keys.

use flex_db::{Row, Table, Value, ValueKey};
use rand::Rng;
use std::collections::HashMap;

/// A weighted dataset: named columns plus `(record, weight)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedDataset {
    pub columns: Vec<String>,
    pub records: Vec<(Row, f64)>,
}

impl WeightedDataset {
    /// Import a protected table: every row gets weight 1.
    pub fn from_table(table: &Table) -> Self {
        WeightedDataset {
            columns: table
                .schema
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect(),
            records: table.rows.iter().map(|r| (r.clone(), 1.0)).collect(),
        }
    }

    /// Number of records (not total weight).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total weight (the quantity a noisy count perturbs).
    pub fn total_weight(&self) -> f64 {
        self.records.iter().map(|(_, w)| w).sum()
    }

    fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("unknown wPINQ column `{name}`"))
    }

    /// `Where`: filter records; weights are unchanged (stable, c = 1).
    pub fn where_<F: Fn(&Row) -> bool>(&self, pred: F) -> WeightedDataset {
        WeightedDataset {
            columns: self.columns.clone(),
            records: self
                .records
                .iter()
                .filter(|(r, _)| pred(r))
                .cloned()
                .collect(),
        }
    }

    /// `Select`: map each record (weights unchanged). The mapping must be
    /// per-record (stable, c = 1).
    pub fn select<F: Fn(&Row) -> Row>(&self, new_columns: Vec<String>, f: F) -> WeightedDataset {
        WeightedDataset {
            columns: new_columns,
            records: self.records.iter().map(|(r, w)| (f(r), *w)).collect(),
        }
    }

    /// The §5.5 experimental setup replaces joins against **public** tables
    /// with a `Select` that looks the public row up as a pure function —
    /// no weight rescaling, so no noise is spent protecting public records
    /// (equivalent to FLEX's §3.6 optimization). Rows without a match are
    /// dropped (inner-join semantics); a public key matching several rows
    /// duplicates the record with its weight (the public multiplicity is
    /// data-independent).
    pub fn lookup_join(&self, key: &str, public: &Table, public_key: &str) -> WeightedDataset {
        let ki = self.col(key);
        let pki = public
            .schema
            .index_of(public_key)
            .unwrap_or_else(|| panic!("unknown public column `{public_key}`"));
        let mut index: HashMap<ValueKey, Vec<&Row>> = HashMap::new();
        for row in &public.rows {
            if !row[pki].is_null() {
                index
                    .entry(ValueKey::from(&row[pki]))
                    .or_default()
                    .push(row);
            }
        }
        let mut columns = self.columns.clone();
        for c in &public.schema.columns {
            columns.push(format!("{}_{}", public.name, c.name));
        }
        let mut records = Vec::new();
        for (row, w) in &self.records {
            if row[ki].is_null() {
                continue;
            }
            if let Some(matches) = index.get(&ValueKey::from(&row[ki])) {
                for m in matches {
                    let mut out = row.clone();
                    out.extend(m.iter().cloned());
                    records.push((out, *w));
                }
            }
        }
        WeightedDataset { columns, records }
    }

    /// wPINQ equijoin with weight rescaling:
    /// output pair weight = `w(a)·w(b) / (Σ_A(k) + Σ_B(k))`.
    pub fn join(&self, key: &str, other: &WeightedDataset, other_key: &str) -> WeightedDataset {
        let ki = self.col(key);
        let kj = other.col(other_key);

        #[derive(Default)]
        struct Side<'a> {
            rows: Vec<(&'a Row, f64)>,
            total: f64,
        }
        let mut groups: HashMap<ValueKey, (Side, Side)> = HashMap::new();
        for (row, w) in &self.records {
            if row[ki].is_null() {
                continue;
            }
            let g = groups.entry(ValueKey::from(&row[ki])).or_default();
            g.0.rows.push((row, *w));
            g.0.total += *w;
        }
        for (row, w) in &other.records {
            if row[kj].is_null() {
                continue;
            }
            let g = groups.entry(ValueKey::from(&row[kj])).or_default();
            g.1.rows.push((row, *w));
            g.1.total += *w;
        }

        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut records = Vec::new();
        for (_, (a, b)) in groups {
            if a.rows.is_empty() || b.rows.is_empty() {
                continue;
            }
            let denom = a.total + b.total;
            for (ra, wa) in &a.rows {
                for (rb, wb) in &b.rows {
                    let mut out = (*ra).clone();
                    out.extend(rb.iter().cloned());
                    records.push((out, wa * wb / denom));
                }
            }
        }
        WeightedDataset { columns, records }
    }

    /// wPINQ `Distinct`: one output record per distinct key tuple, with
    /// weight `min(1, Σw)` — the total output weight then tracks the
    /// distinct count while keeping weighted sensitivity ≤ 1.
    pub fn distinct(&self, key_cols: &[&str]) -> WeightedDataset {
        let idxs: Vec<usize> = key_cols.iter().map(|c| self.col(c)).collect();
        let mut totals: HashMap<Vec<ValueKey>, (Row, f64)> = HashMap::new();
        for (row, w) in &self.records {
            let key: Vec<ValueKey> = idxs.iter().map(|&i| ValueKey::from(&row[i])).collect();
            let entry = totals
                .entry(key)
                .or_insert_with(|| (idxs.iter().map(|&i| row[i].clone()).collect(), 0.0));
            entry.1 += *w;
        }
        WeightedDataset {
            columns: key_cols.iter().map(|c| c.to_string()).collect(),
            records: totals
                .into_values()
                .map(|(row, w)| (row, w.min(1.0)))
                .collect(),
        }
    }

    /// Rename all columns (used to disambiguate before joins).
    pub fn with_columns(mut self, columns: Vec<String>) -> WeightedDataset {
        assert_eq!(columns.len(), self.columns.len(), "column arity mismatch");
        self.columns = columns;
        self
    }

    /// `NoisyCount`: total weight + `Lap(1/ε)` (the wPINQ counting query).
    pub fn noisy_count<R: Rng + ?Sized>(&self, epsilon: f64, rng: &mut R) -> f64 {
        self.total_weight() + flex_core::laplace(rng, 1.0 / epsilon)
    }

    /// Histogram `NoisyCount` partitioned by a key column, over an
    /// analyst-supplied set of bins (parallel composition: the partitions
    /// are disjoint, so each bin is perturbed with the full ε).
    pub fn noisy_count_by_key<R: Rng + ?Sized>(
        &self,
        key: &str,
        bins: &[Value],
        epsilon: f64,
        rng: &mut R,
    ) -> Vec<(Value, f64)> {
        let ki = self.col(key);
        let mut totals: HashMap<ValueKey, f64> = HashMap::new();
        for (row, w) in &self.records {
            *totals.entry(ValueKey::from(&row[ki])).or_default() += *w;
        }
        bins.iter()
            .map(|bin| {
                let t = totals.get(&ValueKey::from(bin)).copied().unwrap_or(0.0);
                (bin.clone(), t + flex_core::laplace(rng, 1.0 / epsilon))
            })
            .collect()
    }

    /// True (non-private) weight per key — used by experiments to measure
    /// the bias the join rescaling introduces.
    pub fn weight_by_key(&self, key: &str) -> HashMap<ValueKey, f64> {
        let ki = self.col(key);
        let mut totals: HashMap<ValueKey, f64> = HashMap::new();
        for (row, w) in &self.records {
            *totals.entry(ValueKey::from(&row[ki])).or_default() += *w;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_db::{DataType, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(name: &str, cols: &[(&str, DataType)], rows: Vec<Row>) -> Table {
        let mut t = Table::new(name, Schema::of(cols));
        t.insert_all(rows).unwrap();
        t
    }

    fn trips() -> Table {
        table(
            "trips",
            &[("driver_id", DataType::Int), ("city", DataType::Str)],
            vec![
                vec![Value::Int(1), Value::str("sf")],
                vec![Value::Int(1), Value::str("sf")],
                vec![Value::Int(1), Value::str("nyc")],
                vec![Value::Int(2), Value::str("sf")],
            ],
        )
    }

    fn drivers() -> Table {
        table(
            "drivers",
            &[("id", DataType::Int), ("home", DataType::Str)],
            vec![
                vec![Value::Int(1), Value::str("sf")],
                vec![Value::Int(2), Value::str("nyc")],
                vec![Value::Int(3), Value::str("la")],
            ],
        )
    }

    #[test]
    fn import_gives_unit_weights() {
        let w = WeightedDataset::from_table(&trips());
        assert_eq!(w.len(), 4);
        assert_eq!(w.total_weight(), 4.0);
    }

    #[test]
    fn where_preserves_weights() {
        let w = WeightedDataset::from_table(&trips()).where_(|r| r[1] == Value::str("sf"));
        assert_eq!(w.total_weight(), 3.0);
    }

    #[test]
    fn join_rescales_weights() {
        // Key 1: trips side total 3, drivers side total 1 → each of the
        // 3×1 pairs gets 1·1/(3+1) = 0.25.
        // Key 2: 1 and 1 → pair weight 1/(1+1) = 0.5.
        let t = WeightedDataset::from_table(&trips());
        let d = WeightedDataset::from_table(&drivers());
        let j = t.join("driver_id", &d, "id");
        assert_eq!(j.len(), 4);
        let total = j.total_weight();
        assert!((total - (3.0 * 0.25 + 0.5)).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn join_weighted_sensitivity_bounded() {
        // Adding one record to a side of a join changes the total output
        // weight by at most 1 (the wPINQ sensitivity guarantee). Check a
        // skewed instance numerically.
        let t = WeightedDataset::from_table(&trips());
        let d = WeightedDataset::from_table(&drivers());
        let base = t.join("driver_id", &d, "id").total_weight();

        let mut trips2 = trips();
        trips2
            .insert(vec![Value::Int(1), Value::str("sf")])
            .unwrap();
        let t2 = WeightedDataset::from_table(&trips2);
        let with_extra = t2.join("driver_id", &d, "id").total_weight();
        assert!((with_extra - base).abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn lookup_join_keeps_weights() {
        let t = WeightedDataset::from_table(&trips());
        let j = t.lookup_join("driver_id", &drivers(), "id");
        // All 4 trips match a driver; weights unchanged.
        assert_eq!(j.total_weight(), 4.0);
        assert!(j.columns.contains(&"drivers_home".to_string()));
    }

    #[test]
    fn noisy_count_concentrates() {
        let t = WeightedDataset::from_table(&trips());
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            sum += t.noisy_count(1.0, &mut rng);
        }
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn histogram_counts_with_missing_bins() {
        let t = WeightedDataset::from_table(&trips());
        let mut rng = StdRng::seed_from_u64(2);
        let bins = vec![Value::str("sf"), Value::str("nyc"), Value::str("la")];
        let out = t.noisy_count_by_key("city", &bins, 10.0, &mut rng);
        assert_eq!(out.len(), 3);
        assert!((out[0].1 - 3.0).abs() < 2.0);
        assert!((out[2].1 - 0.0).abs() < 2.0); // la has no trips
    }

    #[test]
    fn select_remaps_columns() {
        let t = WeightedDataset::from_table(&trips());
        let s = t.select(vec!["city".into()], |r| vec![r[1].clone()]);
        assert_eq!(s.columns, vec!["city"]);
        assert_eq!(s.total_weight(), 4.0);
    }

    #[test]
    fn distinct_caps_weights_at_one() {
        let t = WeightedDataset::from_table(&trips());
        let d = t.distinct(&["driver_id"]);
        // Drivers 1 (3 trips) and 2 (1 trip) → two records of weight 1.
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_weight(), 2.0);
    }

    #[test]
    fn distinct_preserves_fractional_weights() {
        let t = WeightedDataset::from_table(&trips());
        let d = WeightedDataset::from_table(&drivers());
        // After a join the per-driver weights are fractional (< 1); distinct
        // must not round them up.
        let j = t.join("driver_id", &d, "id");
        let dd = j.distinct(&["driver_id"]);
        assert!(dd.total_weight() < 2.0);
        assert!(dd.total_weight() > 0.0);
    }

    #[test]
    fn null_keys_never_join() {
        let mut t = trips();
        t.insert(vec![Value::Null, Value::str("sf")]).unwrap();
        let w = WeightedDataset::from_table(&t);
        let d = WeightedDataset::from_table(&drivers());
        let j = w.join("driver_id", &d, "id");
        assert_eq!(j.len(), 4);
    }
}
