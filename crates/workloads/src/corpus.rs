//! Synthetic SQL-query corpus generator calibrated to the paper's §2
//! empirical study of 8.1M real queries.
//!
//! The real corpus is proprietary; this generator samples query structure
//! from the marginal distributions the paper reports (join counts, join
//! types/conditions, self-join rate, aggregation mix, set-operation rates,
//! statistical-vs-raw split), so the §2 study analyzer exercises the same
//! code paths and reproduces the same headline percentages.

use flex_sql::{
    BinaryOperator, ColumnRef, Cte, Expr, FunctionArg, JoinConstraint, JoinType, Literal,
    OrderByItem, Query, Select, SelectItem, SetExpr, SetOperator, TableRef,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Marginal probabilities, defaulted to the paper's §2.1 findings.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    pub n_queries: usize,
    pub seed: u64,
    /// P(query uses at least one join) — paper: 62.1%.
    pub p_join: f64,
    /// P(query is statistical, i.e. aggregations only) — paper: 34%.
    pub p_statistical: f64,
    /// P(a join query contains a self join) — paper: 28%.
    pub p_self_join: f64,
    /// Join-type weights (inner, left, right+full, cross) — paper: 69/29/<1/1.
    pub join_type_weights: [f64; 4],
    /// Join-condition weights (equijoin, compound, column-cmp, literal-cmp)
    /// — paper: 76/19/3/2.
    pub join_condition_weights: [f64; 4],
    /// Aggregation weights (count, sum, avg, max, min, median, stddev)
    /// — paper: 51/29/8.4/5.9/4.9/0.3/0.1.
    pub aggregation_weights: [f64; 7],
    /// Set-operation rates (union, minus/except, intersect)
    /// — paper: 0.57% / 0.06% / 0.03%.
    pub p_set_ops: [f64; 3],
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_queries: 10_000,
            seed: 0xC0395,
            p_join: 0.621,
            p_statistical: 0.34,
            p_self_join: 0.28,
            join_type_weights: [69.0, 29.0, 1.0, 1.0],
            join_condition_weights: [76.0, 19.0, 3.0, 2.0],
            aggregation_weights: [51.0, 29.0, 8.4, 5.9, 4.9, 0.3, 0.1],
            p_set_ops: [0.0057, 0.0006, 0.0003],
        }
    }
}

const TABLES: [(&str, [&str; 4]); 8] = [
    ("trips", ["id", "driver_id", "city_id", "fare"]),
    ("drivers", ["id", "city_id", "status", "rating"]),
    ("riders", ["id", "city_id", "signup_date", "spend"]),
    ("cities", ["id", "name", "region", "population"]),
    ("payments", ["id", "trip_id", "amount", "method"]),
    ("sessions", ["id", "user_id", "duration", "device"]),
    (
        "support_tickets",
        ["id", "user_id", "category", "opened_at"],
    ),
    ("promotions", ["id", "city_id", "budget", "code"]),
];

const AGG_NAMES: [&str; 7] = ["count", "sum", "avg", "max", "min", "median", "stddev"];

/// Generate the corpus.
pub fn generate(cfg: &CorpusConfig) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.n_queries)
        .map(|_| gen_query(cfg, &mut rng))
        .collect()
}

/// A small database instance matching the corpus's synthetic schema, so
/// corpus queries can be run through the full elastic-sensitivity analysis
/// (used by the §5.1 success-rate experiment).
pub fn catalog_database(rows_per_table: usize, seed: u64) -> flex_db::Database {
    use flex_db::{DataType, Schema, Value};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = flex_db::Database::new();
    db.auto_metrics = false;
    for (name, cols) in TABLES {
        // Every corpus column is generated as a skewed integer; the study
        // and analysis only consult metrics, not semantics.
        let schema = Schema::of(&cols.iter().map(|c| (*c, DataType::Int)).collect::<Vec<_>>());
        db.create_table(name, schema).unwrap();
        let rows = (0..rows_per_table)
            .map(|i| {
                (0..cols.len())
                    .map(|c| {
                        if c == 0 {
                            Value::Int(i as i64) // primary key, unique
                        } else {
                            Value::Int(rng.gen_range(0..50))
                        }
                    })
                    .collect()
            })
            .collect();
        db.insert(name, rows).unwrap();
    }
    db.mark_public("cities");
    db.recompute_metrics();
    db
}

fn pick_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Sample a join count for a join query: geometric-ish body with a long
/// tail reaching the paper's maximum of 95 joins.
fn sample_join_count<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    if u < 0.55 {
        1
    } else if u < 0.80 {
        2
    } else if u < 0.92 {
        rng.gen_range(3..6)
    } else if u < 0.99 {
        rng.gen_range(6..20)
    } else {
        rng.gen_range(20..=95)
    }
}

fn gen_query(cfg: &CorpusConfig, rng: &mut StdRng) -> Query {
    let select = gen_select(cfg, rng);
    let mut body = SetExpr::Select(Box::new(select));
    // Rare set operations.
    let u: f64 = rng.gen();
    if u < cfg.p_set_ops.iter().sum() {
        let op = if u < cfg.p_set_ops[0] {
            SetOperator::Union
        } else if u < cfg.p_set_ops[0] + cfg.p_set_ops[1] {
            SetOperator::Except
        } else {
            SetOperator::Intersect
        };
        let right = gen_select(cfg, rng);
        body = SetExpr::SetOp {
            op,
            all: rng.gen_bool(0.5),
            left: Box::new(body),
            right: Box::new(SetExpr::Select(Box::new(right))),
        };
    }

    let mut order_by = Vec::new();
    if rng.gen_bool(0.25) {
        order_by.push(OrderByItem {
            expr: Expr::Literal(Literal::Integer(1)),
            descending: rng.gen_bool(0.5),
        });
    }
    let ctes = if rng.gen_bool(0.05) {
        vec![Cte {
            name: "prefiltered".to_string(),
            query: Query::from_select(gen_simple_select(rng)),
        }]
    } else {
        Vec::new()
    };
    Query {
        ctes,
        body,
        order_by,
        limit: if rng.gen_bool(0.3) {
            Some(rng.gen_range(1..10_000))
        } else {
            None
        },
        offset: None,
    }
}

fn table_ref(idx: usize, alias: Option<String>) -> TableRef {
    TableRef::Table {
        name: TABLES[idx].0.to_string(),
        alias,
    }
}

fn col(alias: &str, idx: usize, c: usize) -> ColumnRef {
    ColumnRef::qualified(alias.to_string(), TABLES[idx].1[c])
}

fn gen_select(cfg: &CorpusConfig, rng: &mut StdRng) -> Select {
    let statistical = rng.gen_bool(cfg.p_statistical);
    let with_join = rng.gen_bool(cfg.p_join);

    let t0 = rng.gen_range(0..TABLES.len());
    let mut from = table_ref(t0, Some("t0".to_string()));
    let mut aliases = vec![("t0".to_string(), t0)];

    if with_join {
        let n_joins = sample_join_count(rng);
        let self_join = rng.gen_bool(cfg.p_self_join);
        let mut used: Vec<usize> = vec![t0];
        for j in 0..n_joins {
            let alias = format!("t{}", j + 1);
            // Realize the self join on the first joined relation; otherwise
            // prefer tables not yet used, so the self-join marginal is not
            // inflated by accidental collisions.
            let tj = if self_join && j == 0 {
                t0
            } else {
                let unused: Vec<usize> = (0..TABLES.len()).filter(|t| !used.contains(t)).collect();
                if unused.is_empty() {
                    rng.gen_range(0..TABLES.len())
                } else {
                    unused[rng.gen_range(0..unused.len())]
                }
            };
            used.push(tj);
            let (prev_alias, prev_t) = aliases[rng.gen_range(0..aliases.len())].clone();
            let join_type = match pick_weighted(rng, &cfg.join_type_weights) {
                0 => JoinType::Inner,
                1 => JoinType::Left,
                2 => {
                    if rng.gen_bool(0.5) {
                        JoinType::Right
                    } else {
                        JoinType::Full
                    }
                }
                _ => JoinType::Cross,
            };
            let constraint = if join_type == JoinType::Cross {
                JoinConstraint::None
            } else {
                // Join columns are biased toward each table's key (column
                // 0), reproducing the paper's join-relationship mix
                // (26% 1:1, 64% 1:n, 10% n:m) once keys are unique.
                let pick = |rng: &mut StdRng, p_key: f64| {
                    if rng.gen_bool(p_key) {
                        0
                    } else {
                        rng.gen_range(1..4)
                    }
                };
                let lc = col(&prev_alias, prev_t, pick(rng, 0.35));
                let rc = col(&alias, tj, pick(rng, 0.75));
                match pick_weighted(rng, &cfg.join_condition_weights) {
                    // Equijoin.
                    0 => JoinConstraint::On(Expr::col_eq(lc, rc)),
                    // Compound: equijoin plus another predicate.
                    1 => JoinConstraint::On(Expr::binary(
                        Expr::col_eq(lc.clone(), rc.clone()),
                        BinaryOperator::And,
                        Expr::binary(Expr::Column(lc), BinaryOperator::Gt, Expr::Column(rc)),
                    )),
                    // Column comparison.
                    2 => JoinConstraint::On(Expr::binary(
                        Expr::Column(lc),
                        BinaryOperator::Lt,
                        Expr::Column(rc),
                    )),
                    // Literal comparison.
                    _ => JoinConstraint::On(Expr::binary(
                        Expr::Column(rc),
                        BinaryOperator::Eq,
                        Expr::Literal(Literal::Integer(rng.gen_range(0..100))),
                    )),
                }
            };
            from = TableRef::Join {
                left: Box::new(from),
                right: Box::new(table_ref(tj, Some(alias.clone()))),
                join_type,
                constraint,
            };
            aliases.push((alias, tj));
        }
    }

    // Projection.
    let mut projection = Vec::new();
    let mut group_by = Vec::new();
    if statistical {
        let histogram = rng.gen_bool(0.4);
        if histogram {
            let (a, t) = aliases[0].clone();
            let g = Expr::Column(col(&a, t, rng.gen_range(0..4)));
            group_by.push(g.clone());
            projection.push(SelectItem::Expr {
                expr: g,
                alias: None,
            });
        }
        let n_aggs = rng.gen_range(1..4);
        for _ in 0..n_aggs {
            let agg = AGG_NAMES[pick_weighted(rng, &cfg.aggregation_weights)];
            let (a, t) = aliases[rng.gen_range(0..aliases.len())].clone();
            let args = if agg == "count" && rng.gen_bool(0.7) {
                vec![FunctionArg::Wildcard]
            } else {
                vec![FunctionArg::Expr(Expr::Column(col(
                    &a,
                    t,
                    rng.gen_range(0..4),
                )))]
            };
            projection.push(SelectItem::Expr {
                expr: Expr::Function {
                    name: agg.to_string(),
                    distinct: agg == "count" && rng.gen_bool(0.1),
                    args,
                },
                alias: None,
            });
        }
    } else {
        // Raw-data query.
        if rng.gen_bool(0.3) {
            projection.push(SelectItem::Wildcard);
        } else {
            let n_cols = rng.gen_range(1..8);
            for _ in 0..n_cols {
                let (a, t) = aliases[rng.gen_range(0..aliases.len())].clone();
                projection.push(SelectItem::Expr {
                    expr: Expr::Column(col(&a, t, rng.gen_range(0..4))),
                    alias: None,
                });
            }
        }
    }

    // WHERE: 0–4 conjuncts.
    let mut selection: Option<Expr> = None;
    for _ in 0..rng.gen_range(0..4usize) {
        let (a, t) = aliases[rng.gen_range(0..aliases.len())].clone();
        let pred = Expr::binary(
            Expr::Column(col(&a, t, rng.gen_range(0..4))),
            if rng.gen_bool(0.6) {
                BinaryOperator::Eq
            } else {
                BinaryOperator::Gt
            },
            Expr::Literal(Literal::Integer(rng.gen_range(0..1000))),
        );
        selection = Some(match selection {
            None => pred,
            Some(prev) => Expr::binary(prev, BinaryOperator::And, pred),
        });
    }

    Select {
        distinct: rng.gen_bool(0.05),
        projection,
        from: Some(from),
        selection,
        group_by,
        having: None,
    }
}

fn gen_simple_select(rng: &mut StdRng) -> Select {
    let t = rng.gen_range(0..TABLES.len());
    Select {
        distinct: false,
        projection: vec![SelectItem::Wildcard],
        from: Some(table_ref(t, None)),
        selection: None,
        group_by: Vec::new(),
        having: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flex_core::study::analyze_corpus;

    fn corpus(n: usize) -> Vec<Query> {
        generate(&CorpusConfig {
            n_queries: n,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn corpus_roundtrips_through_printer() {
        for q in corpus(300) {
            let text = flex_sql::print_query(&q);
            let reparsed = flex_sql::parse_query(&text)
                .unwrap_or_else(|e| panic!("generated SQL failed to parse: {e}\n{text}"));
            assert_eq!(flex_sql::print_query(&reparsed), text);
        }
    }

    #[test]
    fn join_fraction_matches_marginal() {
        let r = analyze_corpus(&corpus(20_000), None);
        let f = r.join_fraction();
        assert!((f - 0.621).abs() < 0.02, "join fraction {f}");
    }

    #[test]
    fn statistical_fraction_matches_marginal() {
        let r = analyze_corpus(&corpus(20_000), None);
        let f = r.statistical_fraction();
        assert!((f - 0.34).abs() < 0.03, "statistical fraction {f}");
    }

    #[test]
    fn equijoin_dominates_conditions() {
        let r = analyze_corpus(&corpus(20_000), None);
        let f = r.equijoin_fraction();
        // Equijoin + cross-join "other" dilute slightly below 0.76.
        assert!(f > 0.6, "equijoin fraction {f}");
    }

    #[test]
    fn join_count_tail_reaches_deep() {
        let r = analyze_corpus(&corpus(20_000), None);
        let max = r.joins_per_query.iter().max().copied().unwrap();
        assert!(max >= 40, "max joins {max}");
    }

    #[test]
    fn count_is_most_common_aggregation() {
        let r = analyze_corpus(&corpus(20_000), None);
        let a = &r.aggregations;
        assert!(a.count > a.sum);
        assert!(a.sum > a.avg);
        assert!(a.median < a.min);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(corpus(50), corpus(50));
    }
}
