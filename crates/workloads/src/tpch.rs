//! TPC-H data generator (counting-query subset) for the §5.2.1 experiment.
//!
//! Generates the 8 TPC-H tables at a configurable scale factor with the
//! columns the evaluated queries touch, and provides counting versions of
//! the five queries the paper selects (Table 3): Q1, Q4, Q13, Q16, Q21.
//! Following the paper, `customer`, `orders`, `lineitem`, `supplier` and
//! `partsupp` are private; `region`, `nation` and `part` are public.

use crate::uber::date_2016;
use flex_db::{DataType, Database, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale configuration. `scale = 1.0` matches the official row counts
/// (6M lineitem); the default 0.01 keeps experiments laptop-fast while
/// preserving all key relationships.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    pub scale: f64,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            seed: 0x79C4,
        }
    }
}

impl TpchConfig {
    fn n(&self, base: usize) -> usize {
        ((base as f64) * self.scale).round().max(1.0) as usize
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: [&str; 6] = [
    "STANDARD ANODIZED",
    "SMALL PLATED",
    "MEDIUM POLISHED",
    "LARGE BRUSHED",
    "ECONOMY BURNISHED",
    "PROMO TIN",
];
const SIZES: [i64; 8] = [1, 4, 9, 14, 19, 23, 36, 45];

/// Generate the TPC-H database with metrics and public-table marks.
pub fn generate(cfg: &TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    db.auto_metrics = false;

    // region (public).
    db.create_table(
        "region",
        Schema::of(&[("r_regionkey", DataType::Int), ("r_name", DataType::Str)]),
    )
    .unwrap();
    db.insert(
        "region",
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, n)| vec![Value::Int(i as i64), Value::str(*n)])
            .collect(),
    )
    .unwrap();

    // nation (public).
    db.create_table(
        "nation",
        Schema::of(&[
            ("n_nationkey", DataType::Int),
            ("n_name", DataType::Str),
            ("n_regionkey", DataType::Int),
        ]),
    )
    .unwrap();
    db.insert(
        "nation",
        NATIONS
            .iter()
            .enumerate()
            .map(|(i, (n, r))| vec![Value::Int(i as i64), Value::str(*n), Value::Int(*r)])
            .collect(),
    )
    .unwrap();

    // part (public).
    let n_part = cfg.n(200_000);
    db.create_table(
        "part",
        Schema::of(&[
            ("p_partkey", DataType::Int),
            ("p_brand", DataType::Str),
            ("p_type", DataType::Str),
            ("p_size", DataType::Int),
        ]),
    )
    .unwrap();
    db.insert(
        "part",
        (0..n_part)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::str(BRANDS[rng.gen_range(0..BRANDS.len())]),
                    Value::str(TYPES[rng.gen_range(0..TYPES.len())]),
                    Value::Int(SIZES[rng.gen_range(0..SIZES.len())]),
                ]
            })
            .collect(),
    )
    .unwrap();

    // supplier (private).
    let n_supp = cfg.n(10_000);
    db.create_table(
        "supplier",
        Schema::of(&[
            ("s_suppkey", DataType::Int),
            ("s_name", DataType::Str),
            ("s_nationkey", DataType::Int),
        ]),
    )
    .unwrap();
    db.insert(
        "supplier",
        (0..n_supp)
            .map(|i| {
                // Supplier 0 is pinned to SAUDI ARABIA (nationkey 20) so
                // Q21's nation filter is never vacuous at tiny scales.
                let nation = if i == 0 {
                    20
                } else {
                    rng.gen_range(0..NATIONS.len() as i64)
                };
                vec![
                    Value::Int(i as i64),
                    Value::str(format!("Supplier#{i:09}")),
                    Value::Int(nation),
                ]
            })
            .collect(),
    )
    .unwrap();

    // partsupp (private): 4 suppliers per part.
    db.create_table(
        "partsupp",
        Schema::of(&[
            ("ps_partkey", DataType::Int),
            ("ps_suppkey", DataType::Int),
            ("ps_availqty", DataType::Int),
        ]),
    )
    .unwrap();
    let mut ps_rows = Vec::with_capacity(n_part * 4);
    for p in 0..n_part {
        for s in 0..4 {
            ps_rows.push(vec![
                Value::Int(p as i64),
                Value::Int(((p * 7 + s * (n_supp / 4).max(1)) % n_supp) as i64),
                Value::Int(rng.gen_range(1..10_000)),
            ]);
        }
    }
    db.insert("partsupp", ps_rows).unwrap();

    // customer (private).
    let n_cust = cfg.n(150_000);
    db.create_table(
        "customer",
        Schema::of(&[
            ("c_custkey", DataType::Int),
            ("c_nationkey", DataType::Int),
            ("c_mktsegment", DataType::Str),
        ]),
    )
    .unwrap();
    db.insert(
        "customer",
        (0..n_cust)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(rng.gen_range(0..NATIONS.len() as i64)),
                    Value::str(
                        [
                            "AUTOMOBILE",
                            "BUILDING",
                            "FURNITURE",
                            "HOUSEHOLD",
                            "MACHINERY",
                        ][rng.gen_range(0..5)],
                    ),
                ]
            })
            .collect(),
    )
    .unwrap();

    // orders (private): ~10 per customer; a third of customers have none.
    let n_orders = cfg.n(1_500_000);
    db.create_table(
        "orders",
        Schema::of(&[
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_orderstatus", DataType::Str),
            ("o_orderdate", DataType::Str),
            ("o_orderpriority", DataType::Str),
        ]),
    )
    .unwrap();
    let active_custs = (n_cust * 2 / 3).max(1);
    let order_rows: Vec<Vec<Value>> = (0..n_orders)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..active_custs as i64)),
                Value::str(["O", "F", "P"][rng.gen_range(0..3)]),
                Value::str(tpch_date(rng.gen_range(0..2556))),
                Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            ]
        })
        .collect();
    db.insert("orders", order_rows).unwrap();

    // lineitem (private): ~4 per order.
    let n_lineitem = cfg.n(6_000_000);
    db.create_table(
        "lineitem",
        Schema::of(&[
            ("l_orderkey", DataType::Int),
            ("l_partkey", DataType::Int),
            ("l_suppkey", DataType::Int),
            ("l_returnflag", DataType::Str),
            ("l_linestatus", DataType::Str),
            ("l_shipdate", DataType::Str),
            ("l_receiptdate", DataType::Str),
            ("l_commitdate", DataType::Str),
            ("l_quantity", DataType::Int),
        ]),
    )
    .unwrap();
    let li_rows: Vec<Vec<Value>> = (0..n_lineitem)
        .map(|_| {
            let ship = rng.gen_range(0..2556);
            let commit = ship + rng.gen_range(0..60);
            // A fifth of lineitems are received after their commit date
            // (drives Q21's "late shipping" predicate).
            let receipt = if rng.gen_bool(0.2) {
                commit + rng.gen_range(1..30)
            } else {
                commit - rng.gen_range(0..30).min(commit)
            };
            vec![
                Value::Int(rng.gen_range(0..n_orders as i64)),
                Value::Int(rng.gen_range(0..n_part as i64)),
                Value::Int(rng.gen_range(0..n_supp as i64)),
                Value::str(["A", "N", "R"][rng.gen_range(0..3)]),
                Value::str(["O", "F"][rng.gen_range(0..2)]),
                Value::str(tpch_date(ship)),
                Value::str(tpch_date(receipt)),
                Value::str(tpch_date(commit)),
                Value::Int(rng.gen_range(1..51)),
            ]
        })
        .collect();
    db.insert("lineitem", li_rows).unwrap();

    for t in ["region", "nation", "part"] {
        db.mark_public(t);
    }
    db.recompute_metrics();
    db
}

/// Map a day offset to a date in the TPC-H range 1992-01-01..1998-12-31.
/// Leap handling reuses the 2016 calendar shape — adequate for string
/// comparisons.
fn tpch_date(day: u32) -> String {
    let year = 1992 + (day / 366) % 7;
    let within = day % 366;
    let d2016 = date_2016(within);
    format!("{year}{}", &d2016[4..])
}

/// The five evaluated counting queries (paper Table 3), with their join
/// counts as the paper reports them.
pub fn queries() -> Vec<(&'static str, &'static str, usize)> {
    vec![
        (
            "Q1",
            "SELECT l_returnflag, l_linestatus, COUNT(*) FROM lineitem \
             WHERE l_shipdate <= '1998-09-02' GROUP BY l_returnflag, l_linestatus",
            0,
        ),
        (
            "Q4",
            "SELECT o_orderpriority, COUNT(*) FROM orders \
             WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' \
             GROUP BY o_orderpriority",
            0,
        ),
        (
            "Q13",
            "SELECT c_count, COUNT(*) AS custdist FROM \
             (SELECT c.c_custkey AS ck, COUNT(o.o_orderkey) AS c_count \
              FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey \
              GROUP BY c.c_custkey) t \
             GROUP BY c_count ORDER BY custdist DESC",
            1,
        ),
        (
            "Q16",
            "SELECT p.p_brand, p.p_size, COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt \
             FROM partsupp ps JOIN part p ON p.p_partkey = ps.ps_partkey \
             WHERE p.p_brand <> 'Brand#45' AND p.p_size IN (1, 9, 19, 23, 36, 45) \
             GROUP BY p.p_brand, p.p_size",
            1,
        ),
        (
            "Q21",
            "SELECT s.s_name, COUNT(*) AS numwait \
             FROM supplier s \
             JOIN lineitem l1 ON s.s_suppkey = l1.l_suppkey \
             JOIN orders o ON o.o_orderkey = l1.l_orderkey \
             JOIN nation n ON s.s_nationkey = n.n_nationkey \
             WHERE o.o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
             AND n.n_name = 'SAUDI ARABIA' \
             GROUP BY s.s_name",
            3,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchConfig {
        TpchConfig {
            scale: 0.001,
            seed: 5,
        }
    }

    #[test]
    fn generates_all_eight_tables() {
        let db = generate(&tiny());
        for t in [
            "region", "nation", "part", "supplier", "partsupp", "customer", "orders", "lineitem",
        ] {
            assert!(db.table(t).is_some(), "missing {t}");
        }
        assert_eq!(db.table("region").unwrap().len(), 5);
        assert_eq!(db.table("nation").unwrap().len(), 25);
        assert_eq!(db.table("lineitem").unwrap().len(), 6000);
        assert!(db.is_public("nation"));
        assert!(!db.is_public("orders"));
    }

    #[test]
    fn queries_execute() {
        let db = generate(&tiny());
        for (name, sql, _) in queries() {
            let rs = db.execute_sql(sql);
            assert!(rs.is_ok(), "{name} failed: {:?}", rs.err());
            assert!(!rs.unwrap().rows.is_empty(), "{name} returned no rows");
        }
    }

    #[test]
    fn join_counts_match_paper_table3() {
        let expected = [("Q1", 0), ("Q4", 0), ("Q13", 1), ("Q16", 1), ("Q21", 3)];
        for ((name, _, joins), (ename, ejoins)) in queries().iter().zip(expected) {
            assert_eq!(*name, ename);
            assert_eq!(*joins, ejoins, "{name} join count");
        }
    }

    #[test]
    fn dates_format_correctly() {
        assert_eq!(tpch_date(0), "1992-01-01");
        assert!(tpch_date(2555).starts_with("1998"));
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(
            a.table("orders").unwrap().rows,
            b.table("orders").unwrap().rows
        );
    }
}
