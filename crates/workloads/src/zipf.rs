//! A small Zipf-distributed sampler (the whitelisted `rand` crate does not
//! ship `rand_distr`). Used to give synthetic join keys the skew that
//! drives realistic max-frequency metrics.

use rand::Rng;

/// Samples ranks `0..n` with probability ∝ `1/(rank+1)^s` via a
/// precomputed CDF and binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with exponent `s` (s = 0 is
    /// uniform; s ≈ 1 is classic Zipf).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "count {c}");
        }
    }

    #[test]
    fn skewed_when_s_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 99 by roughly 100×.
        assert!(counts[0] > 20 * counts[99].max(1));
        // And the distribution must be monotone-ish at the head.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
