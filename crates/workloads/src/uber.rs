//! Synthetic ride-sharing dataset and query workload.
//!
//! Stands in for the paper's proprietary Uber tables and the 9862-query
//! experiment set of §5. The schema mirrors the tables the paper's
//! representative queries touch (trips, drivers, riders, cities,
//! user_tags, analytics); join keys are Zipf-skewed so max-frequency
//! metrics and per-query population sizes span the same ranges the paper
//! reports (Figure 3: a wide spread from single-digit to near-full-table
//! populations).

use crate::zipf::Zipf;
use flex_db::{DataType, Database, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size knobs for the synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct UberConfig {
    pub cities: usize,
    pub drivers: usize,
    pub riders: usize,
    pub trips: usize,
    pub user_tags: usize,
    pub seed: u64,
}

impl Default for UberConfig {
    fn default() -> Self {
        UberConfig {
            cities: 30,
            drivers: 2_000,
            riders: 5_000,
            trips: 50_000,
            user_tags: 2_000,
            seed: 0x0BE2,
        }
    }
}

/// Cumulative day counts (2016, a leap year).
const MONTH_DAYS: [u32; 12] = [31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Convert a day index `0..366` to an ISO date string in 2016.
pub fn date_2016(day_index: u32) -> String {
    let mut d = day_index % 366;
    for (m, len) in MONTH_DAYS.iter().enumerate() {
        if d < *len {
            return format!("2016-{:02}-{:02}", m + 1, d + 1);
        }
        d -= len;
    }
    unreachable!("day index within a year")
}

// Ordered so the cities named by the Table 5 programs (san francisco,
// hanoi, hong kong, sydney) sit near the head of the Zipf distribution and
// carry realistic populations.
const CITY_NAMES: [&str; 30] = [
    "san francisco",
    "sydney",
    "hanoi",
    "hong kong",
    "new york",
    "los angeles",
    "chicago",
    "seattle",
    "boston",
    "austin",
    "denver",
    "miami",
    "atlanta",
    "portland",
    "dallas",
    "houston",
    "phoenix",
    "philadelphia",
    "london",
    "paris",
    "berlin",
    "amsterdam",
    "madrid",
    "melbourne",
    "singapore",
    "tokyo",
    "seoul",
    "jakarta",
    "mexico city",
    "sao paulo",
];

const VEHICLES: [&str; 4] = ["car", "motorbike", "suv", "bike"];
const TAGS: [&str; 8] = [
    "duplicate_account",
    "fraud_review",
    "vip",
    "promo_abuse",
    "support_escalation",
    "document_expired",
    "payment_failed",
    "background_check",
];

/// Generate the full database, metrics included.
pub fn generate(cfg: &UberConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    db.auto_metrics = false;

    // cities — public.
    db.create_table(
        "cities",
        Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]),
    )
    .unwrap();
    db.mark_public("cities");
    let n_cities = cfg.cities.min(CITY_NAMES.len());
    db.insert(
        "cities",
        (0..n_cities)
            .map(|i| vec![Value::Int(i as i64 + 1), Value::str(CITY_NAMES[i])])
            .collect(),
    )
    .unwrap();

    // drivers.
    db.create_table(
        "drivers",
        Schema::of(&[
            ("id", DataType::Int),
            ("city_id", DataType::Int),
            ("vehicle", DataType::Str),
            ("status", DataType::Str),
            ("signup_date", DataType::Str),
        ]),
    )
    .unwrap();
    let city_zipf = Zipf::new(n_cities, 0.8);
    let driver_rows: Vec<Vec<Value>> = (0..cfg.drivers)
        .map(|i| {
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(city_zipf.sample(&mut rng) as i64 + 1),
                Value::str(VEHICLES[rng.gen_range(0..VEHICLES.len())]),
                Value::str(if rng.gen_bool(0.85) {
                    "active"
                } else {
                    "inactive"
                }),
                Value::str(date_2016(rng.gen_range(0..366))),
            ]
        })
        .collect();
    db.insert("drivers", driver_rows).unwrap();

    // riders.
    db.create_table(
        "riders",
        Schema::of(&[
            ("id", DataType::Int),
            ("city_id", DataType::Int),
            ("signup_date", DataType::Str),
        ]),
    )
    .unwrap();
    let rider_rows: Vec<Vec<Value>> = (0..cfg.riders)
        .map(|i| {
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(city_zipf.sample(&mut rng) as i64 + 1),
                Value::str(date_2016(rng.gen_range(0..366))),
            ]
        })
        .collect();
    db.insert("riders", rider_rows).unwrap();

    // trips — the main fact table.
    db.create_table(
        "trips",
        Schema::of(&[
            ("id", DataType::Int),
            ("driver_id", DataType::Int),
            ("rider_id", DataType::Int),
            ("city_id", DataType::Int),
            ("status", DataType::Str),
            ("fare", DataType::Float),
            ("trip_date", DataType::Str),
        ]),
    )
    .unwrap();
    // Moderate skew: the busiest driver ends up with a few hundred trips,
    // so mf(trips.driver_id) sits well below the large populations — the
    // regime in which the paper's Figure 4(b) shows joins reaching < 10%
    // error.
    let driver_zipf = Zipf::new(cfg.drivers, 0.4);
    let rider_zipf = Zipf::new(cfg.riders, 0.9);
    let trip_rows: Vec<Vec<Value>> = (0..cfg.trips)
        .map(|i| {
            let base: f64 = rng.gen_range(0.0f64..1.0);
            let fare = 3.0 + 40.0 * base * base; // right-skewed fares
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(driver_zipf.sample(&mut rng) as i64 + 1),
                Value::Int(rider_zipf.sample(&mut rng) as i64 + 1),
                Value::Int(city_zipf.sample(&mut rng) as i64 + 1),
                Value::str(if rng.gen_bool(0.9) {
                    "completed"
                } else {
                    "canceled"
                }),
                Value::Float((fare * 100.0).round() / 100.0),
                Value::str(date_2016(rng.gen_range(0..366))),
            ]
        })
        .collect();
    db.insert("trips", trip_rows).unwrap();

    // user_tags — many-to-many on `tag`.
    db.create_table(
        "user_tags",
        Schema::of(&[
            ("user_id", DataType::Int),
            ("tag", DataType::Str),
            ("tagged_at", DataType::Str),
        ]),
    )
    .unwrap();
    let tag_zipf = Zipf::new(TAGS.len(), 0.7);
    let tag_rows: Vec<Vec<Value>> = (0..cfg.user_tags)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(1..=cfg.drivers as i64)),
                Value::str(TAGS[tag_zipf.sample(&mut rng)]),
                Value::str(date_2016(rng.gen_range(0..366))),
            ]
        })
        .collect();
    db.insert("user_tags", tag_rows).unwrap();

    // analytics — one row per driver (one-to-one with drivers).
    db.create_table(
        "analytics",
        Schema::of(&[
            ("driver_id", DataType::Int),
            ("completed_trips", DataType::Int),
            ("last_trip_date", DataType::Str),
        ]),
    )
    .unwrap();
    let analytics_rows: Vec<Vec<Value>> = (0..cfg.drivers)
        .map(|i| {
            let trips: i64 = rng.gen_range(0..400);
            // Most drivers are recently active: 70% took a trip within the
            // last 28 days of the year.
            let last_trip = if rng.gen_bool(0.7) {
                date_2016(rng.gen_range(338..366))
            } else {
                date_2016(rng.gen_range(0..338))
            };
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(trips),
                Value::str(last_trip),
            ]
        })
        .collect();
    db.insert("analytics", analytics_rows).unwrap();

    db.recompute_metrics();
    // The fare column's data model (paper §3.7.2): a check constraint
    // bounding fares, used by SUM/AVG sensitivities.
    db.metrics_mut().set_value_range("trips", "fare", 100.0);
    db
}

/// Labels describing a workload query, used to slice the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTraits {
    pub has_join: bool,
    /// Joins a public table (benefits from the §3.6 optimization).
    pub uses_public_table: bool,
    /// Contains a many-to-many join on private tables.
    pub many_to_many: bool,
    /// Filters on a specific individual's identifier (Table 4 category 1).
    pub targets_individual: bool,
    /// Histogram (GROUP BY) query.
    pub histogram: bool,
}

/// One workload query: the statistical SQL plus a companion population
/// query (`COUNT(DISTINCT <primary key>)` over the same FROM/WHERE) that
/// measures the paper's *population size* metric.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub name: String,
    pub sql: String,
    pub population_sql: String,
    pub traits: QueryTraits,
}

/// Generate the evaluation workload over the synthetic database: counting
/// and histogram queries whose filters sweep population sizes from a
/// handful of rows to the whole table, with and without joins, on private
/// and public join keys.
pub fn workload(cfg: &UberConfig) -> Vec<WorkloadQuery> {
    let mut out = Vec::new();
    let n_cities = cfg.cities.min(CITY_NAMES.len());
    let windows: [(u32, u32, &str); 4] = [
        (297, 297, "1d"), // Oct 24
        (250, 256, "1w"),
        (182, 212, "1m"),
        (0, 365, "1y"),
    ];

    // --- No-join counting queries: city × window sweeps. -----------------
    for city in 1..=n_cities.min(12) {
        for (lo, hi, wname) in windows {
            let pred = format!(
                "city_id = {city} AND trip_date BETWEEN '{}' AND '{}' AND status = 'completed'",
                date_2016(lo),
                date_2016(hi)
            );
            out.push(WorkloadQuery {
                name: format!("count_city{city}_{wname}"),
                sql: format!("SELECT COUNT(*) FROM trips WHERE {pred}"),
                population_sql: format!("SELECT COUNT(DISTINCT id) FROM trips WHERE {pred}"),
                traits: QueryTraits {
                    has_join: false,
                    uses_public_table: false,
                    many_to_many: false,
                    targets_individual: false,
                    histogram: false,
                },
            });
        }
    }

    // Fare-threshold sweeps (varying selectivity without joins).
    for (i, fare) in [5.0, 15.0, 30.0, 40.0, 42.5].iter().enumerate() {
        out.push(WorkloadQuery {
            name: format!("count_fare_gt_{i}"),
            sql: format!("SELECT COUNT(*) FROM trips WHERE fare > {fare}"),
            population_sql: format!("SELECT COUNT(DISTINCT id) FROM trips WHERE fare > {fare}"),
            traits: QueryTraits {
                has_join: false,
                uses_public_table: false,
                many_to_many: false,
                targets_individual: false,
                histogram: false,
            },
        });
    }

    // --- Individual-targeting queries (Table 4, category 1). -------------
    // Two look at a driver's whole year, two at a single month of one
    // driver's activity — the latter are the archetypal "question about a
    // specific individual" the paper's §5.2.2 discusses.
    for (driver, window) in [
        (1i64, None),
        (42, None),
        (1850, Some(("2016-03-01", "2016-03-31"))),
        (1999, Some(("2016-07-01", "2016-07-31"))),
    ] {
        let pred = match window {
            None => format!("driver_id = {driver}"),
            Some((lo, hi)) => {
                format!("driver_id = {driver} AND trip_date BETWEEN '{lo}' AND '{hi}'")
            }
        };
        out.push(WorkloadQuery {
            name: format!("count_driver_{driver}"),
            sql: format!("SELECT COUNT(*) FROM trips WHERE {pred}"),
            population_sql: format!("SELECT COUNT(DISTINCT id) FROM trips WHERE {pred}"),
            traits: QueryTraits {
                has_join: false,
                uses_public_table: false,
                many_to_many: false,
                targets_individual: true,
                histogram: false,
            },
        });
    }

    // --- Public-table joins (§3.6 optimization applies). -----------------
    for city in 1..=n_cities.min(10) {
        let name = CITY_NAMES[city - 1];
        let pred = format!("c.name = '{name}' AND t.status = 'completed'");
        out.push(WorkloadQuery {
            name: format!("count_publicjoin_{city}"),
            sql: format!(
                "SELECT COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id WHERE {pred}"
            ),
            population_sql: format!(
                "SELECT COUNT(DISTINCT t.id) FROM trips t JOIN cities c ON t.city_id = c.id WHERE {pred}"
            ),
            traits: QueryTraits {
                has_join: true,
                uses_public_table: true,
                many_to_many: false,
                targets_individual: false,
                histogram: false,
            },
        });
    }

    // Histogram over public city names.
    for (lo, hi, wname) in windows {
        let pred = format!(
            "t.trip_date BETWEEN '{}' AND '{}'",
            date_2016(lo),
            date_2016(hi)
        );
        out.push(WorkloadQuery {
            name: format!("hist_city_{wname}"),
            sql: format!(
                "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
                 WHERE {pred} GROUP BY c.name"
            ),
            population_sql: format!(
                "SELECT COUNT(DISTINCT t.id) FROM trips t JOIN cities c ON t.city_id = c.id WHERE {pred}"
            ),
            traits: QueryTraits {
                has_join: true,
                uses_public_table: true,
                many_to_many: false,
                targets_individual: false,
                histogram: true,
            },
        });
    }

    // --- Private one-to-many joins (trips ⋈ drivers). --------------------
    for city in 1..=n_cities.min(8) {
        for vehicle in ["car", "motorbike"] {
            let pred = format!(
                "d.city_id = {city} AND d.vehicle = '{vehicle}' AND t.status = 'completed'"
            );
            out.push(WorkloadQuery {
                name: format!("count_join_city{city}_{vehicle}"),
                sql: format!(
                    "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
                     WHERE {pred}"
                ),
                population_sql: format!(
                    "SELECT COUNT(DISTINCT t.id) FROM trips t JOIN drivers d ON t.driver_id = d.id WHERE {pred}"
                ),
                traits: QueryTraits {
                    has_join: true,
                    uses_public_table: false,
                    many_to_many: false,
                    targets_individual: false,
                    histogram: false,
                },
            });
        }
    }

    // Broad private joins: no city filter, so the population can grow past
    // the smooth-sensitivity noise floor (the paper's Figure 4(b) regime
    // where join queries reach < 10% error).
    for (i, pred) in [
        "t.status = 'completed'",
        "d.status = 'active'",
        "t.status = 'completed' AND d.status = 'active'",
        "t.fare > 5",
        "t.trip_date >= '2016-07-01'",
        "d.vehicle = 'car'",
    ]
    .iter()
    .enumerate()
    {
        out.push(WorkloadQuery {
            name: format!("count_join_broad_{i}"),
            sql: format!(
                "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
                 WHERE {pred}"
            ),
            population_sql: format!(
                "SELECT COUNT(DISTINCT t.id) FROM trips t JOIN drivers d ON t.driver_id = d.id WHERE {pred}"
            ),
            traits: QueryTraits {
                has_join: true,
                uses_public_table: false,
                many_to_many: false,
                targets_individual: false,
                histogram: false,
            },
        });
    }

    // One-to-one join (drivers ⋈ analytics) with threshold sweeps.
    for threshold in [10, 50, 150, 300] {
        let pred = format!("a.completed_trips >= {threshold} AND d.status = 'active'");
        out.push(WorkloadQuery {
            name: format!("count_analytics_ge_{threshold}"),
            sql: format!(
                "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id \
                 WHERE {pred}"
            ),
            population_sql: format!(
                "SELECT COUNT(DISTINCT d.id) FROM drivers d JOIN analytics a ON d.id = a.driver_id WHERE {pred}"
            ),
            traits: QueryTraits {
                has_join: true,
                uses_public_table: false,
                many_to_many: false,
                targets_individual: false,
                histogram: false,
            },
        });
    }

    // --- Many-to-many joins on private tables (Table 4, category 3). -----
    // The second side is filtered to a narrow window, so the true count is
    // population-sized while the elastic sensitivity carries the full
    // (mf)²-scale join blow-up — the paper's upward-shifted cluster.
    for tag in ["duplicate_account", "fraud_review", "vip"] {
        let pred = format!(
            "a.tag = '{tag}' AND a.tagged_at > '2016-06-06' \
             AND b.tagged_at BETWEEN '2016-07-01' AND '2016-07-08'"
        );
        out.push(WorkloadQuery {
            name: format!("count_m2m_{tag}"),
            sql: format!(
                "SELECT COUNT(*) FROM user_tags a JOIN user_tags b ON a.tag = b.tag \
                 WHERE {pred}"
            ),
            population_sql: format!(
                "SELECT COUNT(DISTINCT a.user_id) FROM user_tags a JOIN user_tags b ON a.tag = b.tag WHERE {pred}"
            ),
            traits: QueryTraits {
                has_join: true,
                uses_public_table: false,
                many_to_many: true,
                targets_individual: false,
                histogram: false,
            },
        });
    }

    // Histogram by private driver id (bins not enumerable).
    out.push(WorkloadQuery {
        name: "hist_driver_hk".to_string(),
        sql: "SELECT t.driver_id, COUNT(*) FROM trips t \
              JOIN cities c ON t.city_id = c.id \
              WHERE c.name = 'hong kong' AND t.trip_date BETWEEN '2016-09-09' AND '2016-10-03' \
              GROUP BY t.driver_id"
            .to_string(),
        population_sql: "SELECT COUNT(DISTINCT t.id) FROM trips t \
              JOIN cities c ON t.city_id = c.id \
              WHERE c.name = 'hong kong' AND t.trip_date BETWEEN '2016-09-09' AND '2016-10-03'"
            .to_string(),
        traits: QueryTraits {
            has_join: true,
            uses_public_table: true,
            many_to_many: false,
            targets_individual: false,
            histogram: true,
        },
    });

    out
}

/// The six representative §5.5 (Table 5) queries in SQL form, numbered as
/// in the paper.
pub fn table5_queries() -> Vec<(u32, &'static str, String)> {
    vec![
        (
            1,
            "Count distinct drivers who completed a trip in San Francisco yet \
             enrolled as a driver in a different city",
            "SELECT COUNT(DISTINCT d.id) FROM trips t \
             JOIN drivers d ON t.driver_id = d.id \
             JOIN cities c ON t.city_id = c.id \
             WHERE c.name = 'san francisco' AND t.status = 'completed' \
             AND d.city_id <> t.city_id"
                .to_string(),
        ),
        (
            2,
            "Count driver accounts that are active and were tagged after June 6 \
             as duplicate accounts",
            "SELECT COUNT(*) FROM drivers d JOIN user_tags u ON d.id = u.user_id \
             WHERE d.status = 'active' AND u.tag = 'duplicate_account' \
             AND u.tagged_at > '2016-06-06'"
                .to_string(),
        ),
        (
            3,
            "Count motorbike drivers in Hanoi who are currently active and have \
             completed 10 or more trips",
            "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id \
             WHERE d.vehicle = 'motorbike' AND d.city_id = 3 \
             AND d.status = 'active' AND a.completed_trips >= 10"
                .to_string(),
        ),
        (
            4,
            "Histogram: daily trips by city (for all cities) on Oct 24, 2016",
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
             WHERE t.trip_date = '2016-10-24' GROUP BY c.name"
                .to_string(),
        ),
        (
            5,
            "Histogram: total trips per driver in Hong Kong between Sept 9 and \
             Oct 3, 2016",
            "SELECT t.driver_id, COUNT(*) FROM trips t \
             JOIN drivers d ON t.driver_id = d.id \
             WHERE d.city_id = 4 AND t.trip_date BETWEEN '2016-09-09' AND '2016-10-03' \
             GROUP BY t.driver_id"
                .to_string(),
        ),
        (
            6,
            "Histogram: drivers by thresholds of total completed trips for \
             drivers registered in Sydney who completed a trip in the past 28 days",
            "SELECT CASE WHEN a.completed_trips >= 250 THEN 'heavy' \
                         WHEN a.completed_trips >= 100 THEN 'regular' \
                         ELSE 'light' END AS bucket, COUNT(*) \
             FROM drivers d JOIN analytics a ON d.id = a.driver_id \
             WHERE d.city_id = 2 AND a.last_trip_date >= '2016-12-03' \
             GROUP BY CASE WHEN a.completed_trips >= 250 THEN 'heavy' \
                           WHEN a.completed_trips >= 100 THEN 'regular' \
                           ELSE 'light' END"
                .to_string(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UberConfig {
        UberConfig {
            cities: 10,
            drivers: 100,
            riders: 200,
            trips: 2_000,
            user_tags: 150,
            seed: 1,
        }
    }

    #[test]
    fn generates_all_tables_with_metrics() {
        let db = generate(&small());
        for t in [
            "cities",
            "drivers",
            "riders",
            "trips",
            "user_tags",
            "analytics",
        ] {
            assert!(db.table(t).is_some(), "missing {t}");
        }
        assert_eq!(db.table("trips").unwrap().len(), 2000);
        assert!(db.is_public("cities"));
        assert!(db.metrics().max_freq("trips", "driver_id").unwrap() > 1);
        assert_eq!(db.metrics().value_range("trips", "fare"), Some(100.0));
    }

    #[test]
    fn dates_are_valid_iso() {
        assert_eq!(date_2016(0), "2016-01-01");
        assert_eq!(date_2016(31), "2016-02-01");
        assert_eq!(date_2016(365), "2016-12-31");
        assert_eq!(date_2016(297), "2016-10-24");
    }

    #[test]
    fn workload_queries_execute() {
        let cfg = small();
        let db = generate(&cfg);
        let wl = workload(&cfg);
        assert!(wl.len() > 50, "workload has {} queries", wl.len());
        // Spot-check a sample of each trait combination.
        for q in wl.iter().step_by(7) {
            let rs = db.execute_sql(&q.sql);
            assert!(
                rs.is_ok(),
                "query {} failed: {:?}\n{}",
                q.name,
                rs.err(),
                q.sql
            );
            let pop = db.execute_sql(&q.population_sql).unwrap();
            assert!(
                pop.scalar().is_some(),
                "population query {} not scalar",
                q.name
            );
        }
    }

    #[test]
    fn workload_covers_all_classes() {
        let wl = workload(&small());
        assert!(wl.iter().any(|q| !q.traits.has_join));
        assert!(wl
            .iter()
            .any(|q| q.traits.has_join && !q.traits.uses_public_table));
        assert!(wl.iter().any(|q| q.traits.uses_public_table));
        assert!(wl.iter().any(|q| q.traits.many_to_many));
        assert!(wl.iter().any(|q| q.traits.targets_individual));
        assert!(wl.iter().any(|q| q.traits.histogram));
    }

    #[test]
    fn population_sizes_span_orders_of_magnitude() {
        let cfg = small();
        let db = generate(&cfg);
        let wl = workload(&cfg);
        let mut pops = Vec::new();
        for q in &wl {
            if let Ok(rs) = db.execute_sql(&q.population_sql) {
                if let Some(v) = rs.scalar().and_then(|v| v.as_i64()) {
                    pops.push(v);
                }
            }
        }
        let max = pops.iter().max().copied().unwrap_or(0);
        let nonzero_min = pops.iter().filter(|&&p| p > 0).min().copied().unwrap_or(0);
        assert!(max > 500, "max population {max}");
        assert!(nonzero_min < 100, "min population {nonzero_min}");
    }

    #[test]
    fn table5_queries_execute() {
        let db = generate(&small());
        for (no, _, sql) in table5_queries() {
            let rs = db.execute_sql(&sql);
            assert!(rs.is_ok(), "Q{no} failed: {:?}", rs.err());
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(
            a.table("trips").unwrap().rows,
            b.table("trips").unwrap().rows
        );
    }
}
