//! # flex-workloads
//!
//! Synthetic data and query workloads calibrated to the paper's
//! evaluation, substituting for its proprietary inputs (see DESIGN.md):
//!
//! * [`uber`] — a ride-sharing schema (trips/drivers/riders/cities/
//!   user_tags/analytics) with Zipf-skewed join keys, the §5 experiment
//!   workload, and the six Table 5 representative queries;
//! * [`tpch`] — the TPC-H counting-query subset of §5.2.1 (8 tables,
//!   queries Q1/Q4/Q13/Q16/Q21, region/nation/part public);
//! * [`graph`] — a ca-HepTh-like power-law digraph with max-frequency 65
//!   for the §3.4 triangle-counting example;
//! * [`corpus`] — a query-corpus generator sampling the §2 study's
//!   marginal distributions;
//! * [`zipf`] — the skewed sampler underlying all of the above.

pub mod corpus;
pub mod graph;
pub mod tpch;
pub mod uber;
pub mod zipf;

pub use corpus::CorpusConfig;
pub use graph::{GraphConfig, TRIANGLE_SQL};
pub use tpch::TpchConfig;
pub use uber::{QueryTraits, UberConfig, WorkloadQuery};
pub use zipf::Zipf;
