//! Directed-graph generator standing in for the ca-HepTh collaboration
//! network of the paper's §3.4 / §5.5 triangle-counting experiments.
//!
//! The paper's analysis uses the dataset only through its max-frequency
//! metric (65 for ca-HepTh); this generator produces a power-law digraph
//! whose maximum in- and out-degree are capped at — and attained by — a
//! configurable bound, so the elastic-sensitivity numbers match exactly.

use crate::zipf::Zipf;
use flex_db::{DataType, Database, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Configuration for the synthetic graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    pub nodes: usize,
    pub edges: usize,
    /// Cap on in-degree and out-degree; the generator guarantees at least
    /// one node attains it (so `mf` equals this value exactly).
    pub max_degree: u64,
    /// Zipf exponent for endpoint selection.
    pub skew: f64,
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        // Sized loosely after ca-HepTh (9.9k nodes, 26k undirected edges).
        GraphConfig {
            nodes: 2_000,
            edges: 10_000,
            max_degree: 65,
            skew: 1.0,
            seed: 0xCA_4E97,
        }
    }
}

/// Generate the `edges(source, dest)` table.
pub fn generate_edges(cfg: &GraphConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.nodes, cfg.skew);
    let mut out_deg: HashMap<i64, u64> = HashMap::new();
    let mut in_deg: HashMap<i64, u64> = HashMap::new();
    let mut seen: HashSet<(i64, i64)> = HashSet::new();
    let mut rows = Vec::with_capacity(cfg.edges);

    // Seed a hub that attains the degree cap on both endpoints so the
    // max-frequency metric equals `max_degree` exactly.
    let hub = 0i64;
    let mut next_peer = 1i64;
    for _ in 0..cfg.max_degree {
        let peer = next_peer;
        next_peer += 1;
        rows.push(vec![Value::Int(hub), Value::Int(peer)]);
        seen.insert((hub, peer));
        *out_deg.entry(hub).or_default() += 1;
        *in_deg.entry(peer).or_default() += 1;
        let peer2 = next_peer;
        next_peer += 1;
        rows.push(vec![Value::Int(peer2), Value::Int(hub)]);
        seen.insert((peer2, hub));
        *out_deg.entry(peer2).or_default() += 1;
        *in_deg.entry(hub).or_default() += 1;
    }

    let mut attempts = 0usize;
    while rows.len() < cfg.edges && attempts < cfg.edges * 50 {
        attempts += 1;
        let s = zipf.sample(&mut rng) as i64;
        let d = zipf.sample(&mut rng) as i64;
        if s == d || seen.contains(&(s, d)) {
            continue;
        }
        if out_deg.get(&s).copied().unwrap_or(0) >= cfg.max_degree
            || in_deg.get(&d).copied().unwrap_or(0) >= cfg.max_degree
        {
            continue;
        }
        seen.insert((s, d));
        *out_deg.entry(s).or_default() += 1;
        *in_deg.entry(d).or_default() += 1;
        rows.push(vec![Value::Int(s), Value::Int(d)]);
    }

    let mut table = Table::new(
        "edges",
        Schema::of(&[("source", DataType::Int), ("dest", DataType::Int)]),
    );
    table.insert_all(rows).expect("generated rows match schema");
    table
}

/// Build a database holding only the edges table (metrics included).
pub fn graph_database(cfg: &GraphConfig) -> Database {
    let table = generate_edges(cfg);
    let mut db = Database::new();
    db.create_table("edges", table.schema.clone()).unwrap();
    db.auto_metrics = false;
    db.insert("edges", table.rows).unwrap();
    db.recompute_metrics();
    db
}

/// The SQL triangle-counting query of paper §3.4.
pub const TRIANGLE_SQL: &str = "SELECT COUNT(*) FROM edges e1 \
    JOIN edges e2 ON e1.dest = e2.source AND e1.source < e2.source \
    JOIN edges e3 ON e2.dest = e3.source AND e3.dest = e1.source \
    AND e2.source < e3.source";

/// Count triangles directly (ground truth for the experiments), using the
/// same predicate as [`TRIANGLE_SQL`].
pub fn count_triangles(table: &Table) -> u64 {
    let si = table.schema.index_of("source").expect("source column");
    let di = table.schema.index_of("dest").expect("dest column");
    let edges: Vec<(i64, i64)> = table
        .rows
        .iter()
        .filter_map(|r| Some((r[si].as_i64()?, r[di].as_i64()?)))
        .collect();
    let mut by_source: HashMap<i64, Vec<i64>> = HashMap::new();
    let edge_set: HashSet<(i64, i64)> = edges.iter().copied().collect();
    for &(s, d) in &edges {
        by_source.entry(s).or_default().push(d);
    }
    let mut n = 0u64;
    for &(a, b) in &edges {
        if a >= b {
            continue; // e1.source < e2.source
        }
        if let Some(cs) = by_source.get(&b) {
            for &c in cs {
                // e2.source < e3.source and closing edge e3 = (c, a).
                if b < c && edge_set.contains(&(c, a)) {
                    n += 1;
                }
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_cap_attained_exactly() {
        let cfg = GraphConfig::default();
        let db = graph_database(&cfg);
        assert_eq!(db.metrics().max_freq("edges", "source"), Some(65));
        assert_eq!(db.metrics().max_freq("edges", "dest"), Some(65));
    }

    #[test]
    fn no_duplicate_edges_or_self_loops() {
        let cfg = GraphConfig {
            nodes: 100,
            edges: 500,
            ..GraphConfig::default()
        };
        let t = generate_edges(&cfg);
        let mut seen = HashSet::new();
        for r in &t.rows {
            let s = r[0].as_i64().unwrap();
            let d = r[1].as_i64().unwrap();
            assert_ne!(s, d);
            assert!(seen.insert((s, d)));
        }
    }

    #[test]
    fn sql_and_direct_triangle_counts_agree() {
        let cfg = GraphConfig {
            nodes: 60,
            edges: 400,
            max_degree: 20,
            skew: 0.8,
            seed: 7,
        };
        let db = graph_database(&cfg);
        let sql_count = db
            .execute_sql(TRIANGLE_SQL)
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap();
        let direct = count_triangles(db.table("edges").unwrap());
        assert_eq!(sql_count as u64, direct);
        assert!(direct > 0, "test graph should contain triangles");
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = GraphConfig::default();
        let a = generate_edges(&cfg);
        let b = generate_edges(&cfg);
        assert_eq!(a.rows, b.rows);
    }
}
