//! Corpus-wide routing sweep: every row-engine fallback across the Uber
//! evaluation workload, the TPC-H queries and the synthetic §2 corpus
//! must carry a *specific* [`FallbackReason`] — never the `Unknown`
//! placeholder — and both engines must agree on every answer.
//!
//! This is the acceptance gate for the fallback taxonomy: if a new query
//! shape reaches the router without a named decline reason, this sweep
//! finds it before an operator's dashboard shows an unexplained
//! fallback.

use flex_db::{Database, FallbackReason, RouteDecision};
use flex_sql::Query;
use flex_workloads::{corpus, tpch, uber, CorpusConfig, TpchConfig, UberConfig};

/// Route, execute on both engines, and assert (a) any fallback names a
/// concrete reason and (b) the engines are observationally identical —
/// byte-identical results or identical errors. Returns the decision for
/// aggregate accounting.
fn check(db: &Database, q: &Query, label: &str) -> RouteDecision {
    let decision = db.route_decision(q);
    if let Some(reason) = decision.fallback_reason() {
        assert_ne!(
            reason,
            FallbackReason::Unknown,
            "{label}: fallback without a concrete reason"
        );
    }
    let (trace, vec_result) = db.execute_traced(q);
    assert_eq!(trace.route, decision, "{label}: trace disagrees with plan");
    let row_result = db.execute_row(q);
    match (vec_result, row_result) {
        (Ok(v), Ok(r)) => assert_eq!(v, r, "{label}: engines differ"),
        (Err(v), Err(r)) => assert_eq!(
            format!("{v:?}"),
            format!("{r:?}"),
            "{label}: engines report different errors"
        ),
        (v, r) => panic!(
            "{label}: one engine errored and the other answered \
             (vectorized ok: {}, row ok: {})",
            v.is_ok(),
            r.is_ok()
        ),
    }
    decision
}

/// Tally decisions and enforce the sweep-wide invariants: the sweep must
/// exercise both paths (otherwise it tests nothing), `Unknown` must
/// never appear, and neither must the variants the plan-IR executor
/// retired — shapes that used to decline with them now vectorize, so a
/// reappearance means the router regressed.
fn summarize(label: &str, decisions: &[RouteDecision]) {
    let vectorized = decisions.iter().filter(|d| d.is_vectorized()).count();
    let fallbacks = decisions.len() - vectorized;
    assert!(
        !decisions.is_empty(),
        "{label}: sweep ran no queries at all"
    );
    assert!(
        decisions
            .iter()
            .all(|d| d.fallback_reason() != Some(FallbackReason::Unknown)),
        "{label}: an Unknown fallback slipped through"
    );
    assert!(
        decisions
            .iter()
            .all(|d| d.fallback_reason() != Some(FallbackReason::UnsupportedJoinType)),
        "{label}: the retired UnsupportedJoinType variant fired"
    );
    eprintln!(
        "{label}: {} queries, {vectorized} vectorized, {fallbacks} fallbacks",
        decisions.len()
    );
}

#[test]
fn uber_workload_routes_with_named_reasons() {
    let cfg = UberConfig {
        trips: 2_000,
        drivers: 200,
        riders: 400,
        user_tags: 200,
        ..UberConfig::default()
    };
    let db = uber::generate(&cfg);
    let decisions: Vec<RouteDecision> = uber::workload(&UberConfig::default())
        .into_iter()
        .map(|wq| {
            let q = flex_sql::parse_query(&wq.sql)
                .unwrap_or_else(|e| panic!("workload SQL parses ({}): {e:?}", wq.sql));
            check(&db, &q, &wq.sql)
        })
        .collect();
    summarize("uber workload", &decisions);
    // The dashboard workload is exactly what the vectorized engine was
    // built for: the fast path must dominate.
    let vectorized = decisions.iter().filter(|d| d.is_vectorized()).count();
    assert!(
        vectorized * 2 > decisions.len(),
        "vectorized coverage collapsed: {vectorized}/{}",
        decisions.len()
    );
}

#[test]
fn tpch_queries_route_with_named_reasons() {
    let db = tpch::generate(&TpchConfig::default());
    let decisions: Vec<RouteDecision> = tpch::queries()
        .into_iter()
        .map(|(name, sql, _joins)| {
            let q =
                flex_sql::parse_query(sql).unwrap_or_else(|e| panic!("TPC-H {name} parses: {e:?}"));
            check(&db, &q, name)
        })
        .collect();
    summarize("tpch", &decisions);
}

#[test]
fn synthetic_corpus_routes_with_named_reasons() {
    // 400 structurally-random queries from the §2 corpus generator: the
    // marginals include joins of every type, self joins, set operations
    // and raw SELECTs, so this sweep reaches decline paths the curated
    // workloads never hit.
    let db = corpus::catalog_database(60, 0xD15C0);
    let queries = corpus::generate(&CorpusConfig {
        n_queries: 400,
        seed: 0x5EE9,
        ..CorpusConfig::default()
    });
    let decisions: Vec<RouteDecision> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| check(&db, q, &format!("corpus[{i}]")))
        .collect();
    summarize("synthetic corpus", &decisions);
    // The corpus's join mix guarantees both engines see traffic.
    assert!(decisions.iter().any(|d| d.is_vectorized()));
    assert!(decisions.iter().any(|d| !d.is_vectorized()));
}
