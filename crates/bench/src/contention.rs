//! Service hot-path contention storms: multi-threaded cache-hit and
//! budget-admission throughput at 1→N threads.
//!
//! The elastic-sensitivity mechanism is cheap per query, so at service
//! scale the bottleneck is the bookkeeping *around* it. These scenarios
//! hammer exactly that bookkeeping — the sharded noisy-answer cache on
//! the hit path and the lock-striped [`BudgetLedger`] on the admission
//! path — with Zipf-skewed analysts and queries (hot keys collide on
//! shards, like production traffic does), and report throughput scaling
//! relative to one thread. On a serialized hot path the curve is flat;
//! with striped shards it should track the core count.
//!
//! Determinism is asserted before anything is timed: the same seeded
//! service at cache/ledger shard counts 1, 4 and 16 must release
//! byte-identical rows — sharding is scheduling, never part of a noise
//! seed.

use flex_core::PrivacyParams;
use flex_db::Value as DbValue;
use flex_service::{BudgetLedger, LedgerPolicy, QueryService, ServiceConfig};
use flex_workloads::uber::{self, UberConfig};
use flex_workloads::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Thread counts each storm is driven at (the 1-thread run is the
/// scaling denominator).
pub const THREAD_STEPS: [usize; 5] = [1, 2, 4, 8, 16];

/// Cache-hit scaling floor at 4 threads, enforced on ≥ 4-core runners
/// (like the parallel execution scenarios' scaling floor).
pub const CACHE_SCALING_FLOOR_4: f64 = 2.0;

/// Cache-hit scaling floor at 16 threads, enforced on ≥ 8-core runners:
/// the acceptance bar for the sharded hot path.
pub const CACHE_SCALING_FLOOR_16: f64 = 4.0;

/// Distinct analysts driving the storms (Zipf-skewed).
const ANALYSTS: usize = 64;

/// Distinct warmed queries in the cache-hit pool (Zipf-skewed, so hot
/// queries really do collide on cache shards).
const QUERY_POOL: usize = 32;

/// One scaling-floor requirement: enforce `scaling ≥ floor` only when
/// the runner has at least `min_cores` cores; report otherwise.
#[derive(Debug, Clone)]
pub struct ScalingGate {
    /// Scenario name the gate belongs to.
    pub name: String,
    /// Thread count the scaling was measured at.
    pub threads: usize,
    /// Measured throughput scaling vs one thread.
    pub scaling: f64,
    /// Minimum acceptable scaling.
    pub floor: f64,
    /// Cores the runner needs before the floor is enforced.
    pub min_cores: usize,
}

/// The contention scenarios' results: JSON entries (shaped like the
/// exec_bench scenarios, `median_ns` included so the baseline regression
/// gate covers the 1-thread paths) plus the scaling gates.
#[derive(Debug)]
pub struct ContentionReport {
    /// `(scenario name, JSON entry)` pairs for the report artifact.
    pub scenarios: Vec<(String, Value)>,
    /// Scaling floors to enforce (conditioned on runner cores).
    pub gates: Vec<ScalingGate>,
}

/// Median wall time in ns over `iters` runs (after one warmup run).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The cache-hit pool: distinct canonical queries, all cheap.
fn pool_sql(i: usize) -> String {
    format!("SELECT COUNT(*) FROM trips WHERE fare > {i}")
}

/// Drive `per_thread` operations on each of `threads` barrier-started
/// threads; returns overall ops/sec (total ops over the slowest
/// thread's wall time, measured from the common start).
fn storm(threads: usize, per_thread: usize, op: impl Fn(usize, usize) + Sync) -> f64 {
    let barrier = Barrier::new(threads);
    let total = (threads * per_thread) as f64;
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                let op = &op;
                scope.spawn(move || {
                    barrier.wait();
                    let t0 = Instant::now();
                    for i in 0..per_thread {
                        op(t, i);
                    }
                    t0.elapsed()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("storm thread"))
            .max()
            .expect("at least one thread")
    });
    total / elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
}

/// Scaling map + gate rows for one storm family, from its per-thread
/// ops/sec readings.
fn scenario_entry(median_1t_ns: u64, ops: &[(usize, f64)]) -> Value {
    let base = ops
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|(_, o)| *o)
        .unwrap_or(1.0);
    let round2 = |v: f64| (v * 100.0).round() / 100.0;
    json!({
        "median_ns": median_1t_ns,
        "threads": ops.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
        "ops_per_sec": Value::Object(
            ops.iter()
                .map(|(t, o)| (t.to_string(), Value::from(o.round())))
                .collect(),
        ),
        "scaling": Value::Object(
            ops.iter()
                .map(|(t, o)| (t.to_string(), Value::from(round2(o / base))))
                .collect(),
        ),
    })
}

fn scaling_at(ops: &[(usize, f64)], threads: usize) -> f64 {
    let base = ops.iter().find(|(t, _)| *t == 1).map(|(_, o)| *o);
    let at = ops.iter().find(|(t, _)| *t == threads).map(|(_, o)| *o);
    match (base, at) {
        (Some(b), Some(a)) if b > 0.0 => a / b,
        _ => 0.0,
    }
}

/// Run both storms and the shard-determinism assertions. `quick` shrinks
/// the database and per-thread op counts for CI.
pub fn run(quick: bool) -> ContentionReport {
    let (trips, cache_ops, admit_ops) = if quick {
        (10_000, 1_000, 2_000)
    } else {
        (20_000, 4_000, 8_000)
    };
    eprintln!("contention: generating uber database ({trips} trips)...");
    let db = Arc::new(uber::generate(&UberConfig {
        trips,
        drivers: 500,
        riders: 1_000,
        user_tags: 500,
        ..UberConfig::default()
    }));
    let params = PrivacyParams::new(0.01, 1e-9).expect("valid params");
    let service_at = |shards: usize| {
        QueryService::new(
            Arc::clone(&db),
            ServiceConfig {
                seed: Some(0xC047),
                cache_shards: shards,
                ledger_shards: shards,
                ..ServiceConfig::default()
            },
        )
    };

    // Determinism first: shard counts must be invisible in the released
    // bytes. Warm every pool query at 1/4/16 shards and compare rows.
    let reference: Vec<Vec<Vec<DbValue>>> = {
        let svc = service_at(1);
        (0..QUERY_POOL)
            .map(|i| svc.query("warm", &pool_sql(i), params).expect("warm").rows)
            .collect()
    };
    for shards in [4usize, 16] {
        let svc = service_at(shards);
        for (i, expect) in reference.iter().enumerate() {
            let got = svc.query("warm", &pool_sql(i), params).expect("warm").rows;
            assert_eq!(
                &got, expect,
                "released bytes moved at {shards} shards (query {i}) — sharding leaked \
                 into a noise seed; refusing to benchmark"
            );
        }
    }
    eprintln!("contention: releases byte-identical at 1/4/16 shards");

    let mut scenarios = Vec::new();
    let mut gates = Vec::new();

    // ---- cache-hit storm: the full serving path on warmed queries ----
    {
        // Run this storm with the durable ledger enabled: cache hits
        // must never touch the write-ahead log (hits are free, nothing
        // is charged, nothing is logged), so the scaling floors have to
        // hold with fsync-per-admission durability turned on. Only the
        // warmup admissions pay for log writes.
        let wal_path =
            std::env::temp_dir().join(format!("flex-contention-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&wal_path);
        let svc = QueryService::new(
            Arc::clone(&db),
            ServiceConfig {
                seed: Some(0xC047),
                wal_path: Some(wal_path.clone()),
                ..ServiceConfig::default()
            },
        );
        let sqls: Vec<String> = (0..QUERY_POOL).map(pool_sql).collect();
        for (i, sql) in sqls.iter().enumerate() {
            let got = svc.query("warm", sql, params).expect("warm").rows;
            assert_eq!(got, reference[i], "warmed release diverged");
        }
        let appends_after_warm = svc.telemetry().wal_appends;
        assert!(appends_after_warm > 0, "warm admissions must hit the WAL");
        let analysts: Vec<String> = (0..ANALYSTS).map(|i| format!("analyst-{i}")).collect();
        let query_zipf = Zipf::new(QUERY_POOL, 1.1);
        let analyst_zipf = Zipf::new(ANALYSTS, 1.1);

        let med = {
            let mut rng = StdRng::seed_from_u64(11);
            median_ns(cache_ops, || {
                let sql = &sqls[query_zipf.sample(&mut rng)];
                let analyst = &analysts[analyst_zipf.sample(&mut rng)];
                let r = svc.query(analyst, sql, params).expect("cache hit");
                assert!(r.from_cache, "pool query must hit the cache");
                std::hint::black_box(r);
            })
        };

        let mut ops = Vec::new();
        for threads in THREAD_STEPS {
            let rate = storm(threads, cache_ops, |t, _| {
                // Per-thread RNG: deterministic skew, no shared state.
                let mut rng = StdRng::seed_from_u64(0x5708 + t as u64);
                let sql = &sqls[query_zipf.sample(&mut rng)];
                let analyst = &analysts[analyst_zipf.sample(&mut rng)];
                std::hint::black_box(svc.query(analyst, sql, params).expect("cache hit"));
            });
            eprintln!("contention-cache-hit: {threads:>2} threads, {rate:>12.0} ops/sec");
            ops.push((threads, rate));
        }
        scenarios.push((
            "contention-cache-hit".to_string(),
            scenario_entry(med, &ops),
        ));
        gates.push(ScalingGate {
            name: "contention-cache-hit".to_string(),
            threads: 4,
            scaling: scaling_at(&ops, 4),
            floor: CACHE_SCALING_FLOOR_4,
            min_cores: 4,
        });
        gates.push(ScalingGate {
            name: "contention-cache-hit".to_string(),
            threads: 16,
            scaling: scaling_at(&ops, 16),
            floor: CACHE_SCALING_FLOOR_16,
            min_cores: 8,
        });
        let t = svc.telemetry();
        assert_eq!(t.failed, 0, "storm must not fail queries: {t}");
        assert_eq!(
            t.wal_appends, appends_after_warm,
            "cache hits must never touch the WAL: {t}"
        );
        assert_eq!(t.wal_errors, 0, "storm must not poison the WAL: {t}");
        let _ = std::fs::remove_file(&wal_path);
    }

    // ---- admission storm: charge + settle on the striped ledger ----
    {
        // Huge caps: the storm measures admission bookkeeping, not
        // rejection. Zipf-skewed analysts, so hot accounts collide on
        // their shard exactly as a heavy-hitter analyst would.
        let ledger = BudgetLedger::new(LedgerPolicy::sequential(1e12, 1.0));
        let analysts: Vec<String> = (0..ANALYSTS).map(|i| format!("analyst-{i}")).collect();
        let analyst_zipf = Zipf::new(ANALYSTS, 1.1);

        let med = {
            let mut rng = StdRng::seed_from_u64(13);
            median_ns(admit_ops, || {
                let analyst = &analysts[analyst_zipf.sample(&mut rng)];
                let c = ledger.try_charge(analyst, 1e-6, 1e-12).expect("admit");
                ledger.settle(&c);
            })
        };

        let mut ops = Vec::new();
        for threads in THREAD_STEPS {
            let rate = storm(threads, admit_ops, |t, _| {
                let mut rng = StdRng::seed_from_u64(0xAD31 + t as u64);
                let analyst = &analysts[analyst_zipf.sample(&mut rng)];
                let c = ledger.try_charge(analyst, 1e-6, 1e-12).expect("admit");
                ledger.settle(&c);
            });
            eprintln!("contention-admission: {threads:>2} threads, {rate:>12.0} ops/sec");
            ops.push((threads, rate));
        }
        scenarios.push((
            "contention-admission".to_string(),
            scenario_entry(med, &ops),
        ));
        // Reported, not gated: admission shares one global charge-id
        // counter by design (charge-id uniqueness), so its ceiling is
        // lower than the cache hit path's; the baseline regression gate
        // still bounds its 1-thread median.
    }

    ContentionReport { scenarios, gates }
}

/// Enforce `gates` given the runner's core count. Returns `true` if any
/// enforced gate failed; under-provisioned runners report instead of
/// flaking, like the parallel-execution scaling floors.
pub fn enforce_gates(gates: &[ScalingGate], available_cores: usize) -> bool {
    let mut failed = false;
    for g in gates {
        if available_cores >= g.min_cores {
            if g.scaling < g.floor {
                eprintln!(
                    "REGRESSION GATE: `{}` scales only {:.2}x at {} threads (floor {}x)",
                    g.name, g.scaling, g.threads, g.floor
                );
                failed = true;
            } else {
                eprintln!(
                    "gate ok: `{}` scaling {:.2}x at {} threads (floor {}x)",
                    g.name, g.scaling, g.threads, g.floor
                );
            }
        } else {
            eprintln!(
                "runner has {available_cores} core(s) < {}: reporting `{}` scaling \
                 {:.2}x at {} threads without enforcing its {}x floor",
                g.min_cores, g.name, g.scaling, g.threads, g.floor
            );
        }
    }
    failed
}
