//! # flex-bench
//!
//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (see DESIGN.md's per-experiment
//! index). Each binary prints the paper's reported values next to the
//! measured ones and writes machine-readable JSON under `results/`.

pub mod contention;
pub mod report;
pub mod setup;

pub use report::{bucket_label, error_buckets, write_json, Table};
pub use setup::{measure_workload, uber_db, MeasuredQuery, DEFAULT_TRIALS};
