//! Terminal-table printing and JSON result dumps.

use std::fs;
use std::path::PathBuf;

/// A simple fixed-width table printer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    pub fn print(&self) {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(cols) {
                s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Write a JSON result file under `results/` (relative to the workspace
/// root when run via `cargo run`, else the current directory).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let mut dir = PathBuf::from("results");
    if !dir.exists() {
        // Running from a crate subdirectory: walk up to the workspace root.
        let up = PathBuf::from("../../results");
        if up.exists() {
            dir = up;
        } else {
            let _ = fs::create_dir_all(&dir);
        }
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

/// The paper's Figure 6/7 error buckets.
pub const ERROR_BUCKETS: [(&str, f64, f64); 6] = [
    ("<1%", 0.0, 1.0),
    ("1-5%", 1.0, 5.0),
    ("5-10%", 5.0, 10.0),
    ("10-25%", 10.0, 25.0),
    ("25-100%", 25.0, 100.0),
    ("More", 100.0, f64::INFINITY),
];

/// Bucket a list of median errors (%) into the Figure 6/7 bins, returning
/// percentages.
pub fn error_buckets(errors: &[f64]) -> Vec<(&'static str, f64)> {
    let n = errors.len().max(1) as f64;
    ERROR_BUCKETS
        .iter()
        .map(|(label, lo, hi)| {
            let c = errors.iter().filter(|e| **e >= *lo && **e < *hi).count();
            (*label, 100.0 * c as f64 / n)
        })
        .collect()
}

/// Label for a single error value.
pub fn bucket_label(error: f64) -> &'static str {
    for (label, lo, hi) in ERROR_BUCKETS {
        if error >= lo && error < hi {
            return label;
        }
    }
    "More"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_line() {
        let errs = [0.5, 3.0, 7.0, 15.0, 50.0, 1e6];
        let buckets = error_buckets(&errs);
        let total: f64 = buckets.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
        for (_, p) in &buckets {
            assert!((*p - 100.0 / 6.0).abs() < 1.0);
        }
    }

    #[test]
    fn bucket_labels() {
        assert_eq!(bucket_label(0.0), "<1%");
        assert_eq!(bucket_label(1.0), "1-5%");
        assert_eq!(bucket_label(99.0), "25-100%");
        assert_eq!(bucket_label(1e9), "More");
    }
}
