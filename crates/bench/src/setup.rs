//! Shared experiment setup: database construction and workload
//! measurement, following the §5.2 methodology (ε = 0.1, δ = n^(−ln n),
//! median relative error per query).

use flex_core::{run_sql_with, FlexOptions, PrivacyParams};
use flex_db::Database;
use flex_workloads::uber::{self, QueryTraits, UberConfig, WorkloadQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Trials per query when measuring median error.
pub const DEFAULT_TRIALS: usize = 21;

/// Build the default Uber-like database and workload. `scale` multiplies
/// the default row counts (1.0 ≈ 50k trips).
pub fn uber_db(scale: f64) -> (Database, Vec<WorkloadQuery>) {
    let cfg = UberConfig {
        trips: ((50_000f64 * scale) as usize).max(1_000),
        drivers: ((2_000f64 * scale) as usize).max(100),
        riders: ((5_000f64 * scale) as usize).max(200),
        user_tags: ((2_000f64 * scale) as usize).max(100),
        ..UberConfig::default()
    };
    let db = uber::generate(&cfg);
    let wl = uber::workload(&cfg);
    (db, wl)
}

/// Per-query measurement outcome.
#[derive(Debug, Clone)]
pub struct MeasuredQuery {
    pub name: String,
    pub traits: QueryTraits,
    /// The paper's population-size metric (distinct primary rows used).
    pub population: i64,
    /// Median over trials of (median relative error % across cells).
    pub median_error_pct: f64,
    pub join_count: usize,
    pub timings: MeasuredTimings,
    /// Queries FLEX rejected (unsupported) are excluded upstream; this
    /// records the count of successful trials for sanity.
    pub trials: usize,
}

#[derive(Debug, Clone, Copy, Default)]
pub struct MeasuredTimings {
    pub analysis: Duration,
    pub execution: Duration,
    pub perturbation: Duration,
}

/// Run every workload query through FLEX and collect median errors and
/// population sizes. The full pipeline (analysis + execution +
/// perturbation) runs once per query; the remaining `trials − 1` noise
/// draws reuse the true results and per-column noise scales — the noise is
/// additive and independent of the execution, so the error distribution is
/// identical to re-running the query, at a fraction of the cost.
///
/// Queries the analysis rejects are skipped (they are counted by the §5.1
/// success-rate experiment, not the utility ones).
pub fn measure_workload(
    db: &Database,
    workload: &[WorkloadQuery],
    epsilon: f64,
    trials: usize,
    opts: &FlexOptions,
    seed: u64,
) -> Vec<MeasuredQuery> {
    let delta = PrivacyParams::delta_for_db_size(db.total_rows());
    let params = PrivacyParams::new(epsilon, delta).expect("valid params");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(workload.len());

    for q in workload {
        let population = db
            .execute_sql(&q.population_sql)
            .ok()
            .and_then(|rs| rs.scalar().and_then(|v| v.as_i64()))
            .unwrap_or(0);

        let first = match run_sql_with(db, &q.sql, params, &mut rng, opts) {
            Ok(r) => r,
            Err(_) => continue,
        };
        let mut errors = Vec::with_capacity(trials);
        if let Some(e) = first.median_relative_error_pct() {
            errors.push(e);
        }
        for _ in 1..trials {
            if let Some(e) = re_noise_error(&first, &mut rng) {
                errors.push(e);
            }
        }
        if errors.is_empty() {
            continue;
        }
        errors.sort_by(f64::total_cmp);
        let median = errors[errors.len() / 2];
        out.push(MeasuredQuery {
            name: q.name.clone(),
            traits: q.traits,
            population,
            median_error_pct: median,
            join_count: first.join_count,
            timings: MeasuredTimings {
                analysis: first.timings.analysis,
                execution: first.timings.execution,
                perturbation: first.timings.perturbation,
            },
            trials,
        });
    }
    out
}

/// Draw a fresh noise vector over an existing FLEX result and return the
/// median relative error, exactly as `FlexResult::median_relative_error_pct`
/// would report for an independent run.
fn re_noise_error<R: rand::Rng + ?Sized>(r: &flex_core::FlexResult, rng: &mut R) -> Option<f64> {
    let mut errs: Vec<f64> = Vec::new();
    for truth in &r.true_rows {
        for (ci, s) in r.column_sensitivity.iter().enumerate() {
            let Some(s) = s else { continue };
            let t = truth[ci].as_f64()?;
            if t == 0.0 {
                continue;
            }
            let noised = t + flex_core::laplace(rng, s.noise_scale);
            errs.push(((noised - t) / t).abs() * 100.0);
        }
    }
    if errs.is_empty() {
        return None;
    }
    errs.sort_by(f64::total_cmp);
    Some(errs[errs.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_workload() {
        let (db, wl) = uber_db(0.05);
        let sample: Vec<_> = wl.into_iter().take(6).collect();
        let m = measure_workload(&db, &sample, 1.0, 3, &FlexOptions::new(), 42);
        assert!(!m.is_empty());
        for q in &m {
            assert!(q.median_error_pct >= 0.0);
            assert!(q.trials > 0);
        }
    }
}
