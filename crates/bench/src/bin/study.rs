//! Reproduces the paper's §2 empirical study (Questions 1–8) on a
//! synthetic corpus whose marginals are calibrated to the reported
//! statistics of the 8.1M-query Uber dataset.
//!
//! Usage: `cargo run -p flex-bench --bin study [n_queries]`

use flex_bench::{write_json, Table};
use flex_core::study::analyze_corpus;
use flex_workloads::corpus::{self, CorpusConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    println!("=== §2 empirical study (synthetic corpus, N = {n}) ===\n");
    println!(
        "Question 1 (database backends): the paper observes 6+ engines \
         (Vertica, Postgres, MySQL, Hive, Presto, ...). This reproduction \
         runs one engine (flex-db); Requirement 1 is demonstrated by FLEX \
         never modifying it.\n"
    );

    let queries = corpus::generate(&CorpusConfig {
        n_queries: n,
        ..CorpusConfig::default()
    });
    // Metrics for join-relationship classification come from a catalog
    // instance matching the corpus schema (column 0 of every table is a
    // unique key).
    let db = corpus::catalog_database(200, 17);
    let r = analyze_corpus(&queries, Some(&db));

    // Question 2: relational operators.
    let mut t = Table::new(["Operator", "measured %", "paper %"]);
    let pct = |x: usize| format!("{:.2}", 100.0 * x as f64 / r.total_queries as f64);
    t.row(["Select".to_string(), pct(r.operators.select), "100".into()]);
    t.row(["Join".to_string(), pct(r.operators.join), "62.1".into()]);
    t.row(["Union".to_string(), pct(r.operators.union), "0.57".into()]);
    t.row([
        "Minus/Except".to_string(),
        pct(r.operators.minus_except),
        "0.06".into(),
    ]);
    t.row([
        "Intersect".to_string(),
        pct(r.operators.intersect),
        "0.03".into(),
    ]);
    println!("Question 2: relational operator usage");
    t.print();

    // Question 3: joins per query.
    let mut joins: Vec<usize> = r
        .joins_per_query
        .iter()
        .copied()
        .filter(|j| *j > 0)
        .collect();
    joins.sort_unstable();
    let max_joins = joins.last().copied().unwrap_or(0);
    println!("\nQuestion 3: joins per query (join queries only)");
    let mut t = Table::new(["Joins", "queries"]);
    for (lo, hi) in [(1, 1), (2, 2), (3, 5), (6, 19), (20, 95)] {
        let c = joins.iter().filter(|j| **j >= lo && **j <= hi).count();
        t.row([format!("{lo}-{hi}"), c.to_string()]);
    }
    t.print();
    println!("max joins in one query: {max_joins} (paper: 95)");

    // Question 4: join types / conditions / self joins / relationships.
    println!("\nQuestion 4: join condition (measured % vs paper %)");
    let jc = &r.join_conditions;
    let total_j = (jc.equijoin
        + jc.compound
        + jc.column_comparison
        + jc.literal_comparison
        + jc.other)
        .max(1) as f64;
    let mut t = Table::new(["Condition", "measured %", "paper %"]);
    for (name, v, p) in [
        ("Equijoin", jc.equijoin, "76"),
        ("Compound expr.", jc.compound, "19"),
        ("Col. comparison", jc.column_comparison, "3"),
        ("Literal comparison", jc.literal_comparison, "2"),
        ("Other/none", jc.other, "-"),
    ] {
        t.row([
            name.to_string(),
            format!("{:.1}", 100.0 * v as f64 / total_j),
            p.to_string(),
        ]);
    }
    t.print();

    println!("\nQuestion 4: join type (measured % vs paper %)");
    let jt = &r.join_types;
    let total_t = (jt.inner + jt.left + jt.right + jt.full + jt.cross).max(1) as f64;
    let mut t = Table::new(["Type", "measured %", "paper %"]);
    for (name, v, p) in [
        ("Inner", jt.inner, "69"),
        ("Left", jt.left, "29"),
        ("Right+Full", jt.right + jt.full, "<1"),
        ("Cross", jt.cross, "1"),
    ] {
        t.row([
            name.to_string(),
            format!("{:.1}", 100.0 * v as f64 / total_t),
            p.to_string(),
        ]);
    }
    t.print();

    let join_queries = r.joins_per_query.iter().filter(|j| **j > 0).count().max(1);
    println!(
        "\nQuestion 4: self joins: {:.1}% of join queries (paper: 28%)",
        100.0 * r.self_join_queries as f64 / join_queries as f64
    );
    let jr = &r.join_relationships;
    let rel_total = (jr.one_to_one + jr.one_to_many + jr.many_to_many).max(1) as f64;
    println!(
        "Question 4: join relationship (classified via mf metrics): \
         1:1 {:.0}%  1:n {:.0}%  n:m {:.0}%  (paper: 26% / 64% / 10%)",
        100.0 * jr.one_to_one as f64 / rel_total,
        100.0 * jr.one_to_many as f64 / rel_total,
        100.0 * jr.many_to_many as f64 / rel_total,
    );

    // Question 5: statistical fraction.
    println!(
        "\nQuestion 5: statistical queries: {:.1}% (paper: 34%)",
        100.0 * r.statistical_fraction()
    );

    // Question 6: aggregation functions.
    println!("\nQuestion 6: aggregation functions (measured % vs paper %)");
    let a = &r.aggregations;
    let at = a.total().max(1) as f64;
    let mut t = Table::new(["Function", "measured %", "paper %"]);
    for (name, v, p) in [
        ("Count", a.count, "51"),
        ("Sum", a.sum, "29"),
        ("Avg", a.avg, "8"),
        ("Max", a.max, "6"),
        ("Min", a.min, "5"),
        ("Median", a.median, "0.3"),
        ("Stddev", a.stddev, "0.1"),
    ] {
        t.row([
            name.to_string(),
            format!("{:.1}", 100.0 * v as f64 / at),
            p.to_string(),
        ]);
    }
    t.print();

    // Question 7: query sizes.
    let mut sizes = r.query_sizes.clone();
    sizes.sort_unstable();
    println!("\nQuestion 7: query size in clauses");
    let mut t = Table::new(["Percentile", "clauses"]);
    for (p, label) in [(50, "p50"), (90, "p90"), (99, "p99"), (100, "max")] {
        let idx = ((sizes.len() - 1) * p) / 100;
        t.row([label.to_string(), sizes[idx].to_string()]);
    }
    t.print();
    println!("(paper: majority < 100 clauses, tail into the thousands)");

    println!(
        "\nQuestion 8 (result sizes) is a property of the data, not the \
         corpus; see the fig3 binary for the population-size distribution."
    );

    write_json(
        "study",
        &serde_json::json!({
            "total_queries": r.total_queries,
            "join_fraction": r.join_fraction(),
            "statistical_fraction": r.statistical_fraction(),
            "equijoin_fraction": r.equijoin_fraction(),
            "self_join_fraction": r.self_join_queries as f64 / join_queries as f64,
            "max_joins": max_joins,
            "aggregations": {
                "count": a.count, "sum": a.sum, "avg": a.avg, "max": a.max,
                "min": a.min, "median": a.median, "stddev": a.stddev,
            },
            "paper": {
                "join_fraction": 0.621, "statistical_fraction": 0.34,
                "equijoin_fraction": 0.76, "self_join_fraction": 0.28,
                "max_joins": 95,
            }
        }),
    );
}
