//! Reproduces paper Table 1: the mechanism × feature support matrix,
//! verified by actually exercising each implemented mechanism on probe
//! datasets for every join-relationship class.

use flex_bench::{write_json, Table};
use flex_core::relalg::{Attr, Rel};
use flex_db::{DataType, Schema, Value};
use flex_mechanisms::{
    restricted_sensitivity, table1_features, PinqDataset, StaticBounds, WeightedDataset,
};

fn probe_table(name: &str, key_values: &[i64]) -> flex_db::Table {
    let mut t = flex_db::Table::new(name, Schema::of(&[("k", DataType::Int)]));
    t.insert_all(
        key_values
            .iter()
            .map(|v| vec![Value::Int(*v)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    t
}

fn rel_join(lname: &str, rname: &str) -> Rel {
    Rel::Join {
        left: Box::new(Rel::Table {
            name: lname.to_string(),
            occurrence: 0,
            public: false,
        }),
        right: Box::new(Rel::Table {
            name: rname.to_string(),
            occurrence: 1,
            public: false,
        }),
        left_key: Attr {
            occurrence: 0,
            table: lname.to_string(),
            column: "k".to_string(),
        },
        right_key: Attr {
            occurrence: 1,
            table: rname.to_string(),
            column: "k".to_string(),
        },
    }
}

fn main() {
    println!("=== Table 1: general-purpose DP mechanisms with join support ===\n");

    // Probe datasets: unique keys (one side), repeated keys (many side).
    let one_a = probe_table("a", &[1, 2, 3, 4]);
    let many_a = probe_table("a", &[1, 1, 2, 2, 3]);
    let one_b = probe_table("b", &[1, 2, 3]);
    let many_b = probe_table("b", &[1, 1, 1, 2, 3]);

    // --- PINQ: restricted join counts unique keys, so only 1:1 joins have
    // standard semantics.
    let pinq_one =
        PinqDataset::from_table(&one_a).restricted_join("k", &PinqDataset::from_table(&one_b), "k");
    let true_one_to_one = 3; // keys 1,2,3 pair uniquely
    let pinq_1to1_ok = pinq_one.rows.len() == true_one_to_one;
    let pinq_many = PinqDataset::from_table(&many_a).restricted_join(
        "k",
        &PinqDataset::from_table(&one_b),
        "k",
    );
    let true_one_to_many = 5; // standard join of many_a with one_b
    let pinq_1ton_ok = pinq_many.rows.len() == true_one_to_many;

    // --- wPINQ: all joins execute; counts are weighted (biased but DP).
    let w_mm =
        WeightedDataset::from_table(&many_a).join("k", &WeightedDataset::from_table(&many_b), "k");
    let wpinq_mm_ok = w_mm.total_weight() > 0.0;

    // --- Restricted sensitivity: bounded for 1:1 and 1:n, fails on n:m.
    let bounds = StaticBounds::new().with("a", "k", 2).with("b", "k", 1);
    let rs_1n = restricted_sensitivity(&rel_join("a", "b"), &bounds);
    let bounds_mm = StaticBounds::new().with("a", "k", 2).with("b", "k", 3);
    let rs_mm = restricted_sensitivity(&rel_join("a", "b"), &bounds_mm);

    // --- Elastic sensitivity: all three classes bounded.
    let mut db = flex_db::Database::new();
    db.create_table("a", Schema::of(&[("k", DataType::Int)]))
        .unwrap();
    db.create_table("b", Schema::of(&[("k", DataType::Int)]))
        .unwrap();
    db.insert("a", many_a.rows.clone()).unwrap();
    db.insert("b", many_b.rows.clone()).unwrap();
    let q = flex_sql::parse_query("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k").unwrap();
    let elastic_mm_ok = flex_core::analyze(&q, &db).is_ok();

    println!("Probe results:");
    println!(
        "  PINQ restricted join, 1:1   → count {} (truth {}) — {}",
        pinq_one.rows.len(),
        true_one_to_one,
        if pinq_1to1_ok {
            "standard semantics"
        } else {
            "DEVIATES"
        }
    );
    println!(
        "  PINQ restricted join, 1:n   → count {} (truth {}) — {}",
        pinq_many.rows.len(),
        true_one_to_many,
        if pinq_1ton_ok {
            "standard semantics"
        } else {
            "deviates (counts keys)"
        }
    );
    println!(
        "  wPINQ n:m join              → total weight {:.3} (executes, weighted)",
        w_mm.total_weight()
    );
    println!("  Restricted sensitivity 1:n → {rs_1n:?}");
    println!("  Restricted sensitivity n:m → {rs_mm:?}");
    println!(
        "  Elastic sensitivity n:m     → {}",
        if elastic_mm_ok { "bounded" } else { "rejected" }
    );

    println!("\nFeature matrix (✓ = supported):");
    let mut t = Table::new([
        "Mechanism",
        "DB compat",
        "1:1 equijoin",
        "1:n equijoin",
        "n:m equijoin",
    ]);
    let mark = |b: bool| if b { "✓" } else { " " }.to_string();
    for f in table1_features() {
        t.row([
            f.name.to_string(),
            mark(f.database_compatibility),
            mark(f.one_to_one_equijoin),
            mark(f.one_to_many_equijoin),
            mark(f.many_to_many_equijoin),
        ]);
    }
    t.print();
    println!("\n(matches paper Table 1 row for row)");

    // Cross-check the matrix against the probes.
    assert!(
        pinq_1to1_ok && !pinq_1ton_ok,
        "PINQ probe contradicts matrix"
    );
    assert!(wpinq_mm_ok, "wPINQ probe contradicts matrix");
    assert!(
        rs_1n.is_ok() && rs_mm.is_err(),
        "restricted probe contradicts matrix"
    );
    assert!(elastic_mm_ok, "elastic probe contradicts matrix");

    write_json(
        "table1",
        &serde_json::json!({
            "pinq": {"one_to_one": pinq_1to1_ok, "one_to_many": pinq_1ton_ok},
            "wpinq": {"many_to_many": wpinq_mm_ok},
            "restricted": {"one_to_many": rs_1n.is_ok(), "many_to_many": rs_mm.is_ok()},
            "elastic": {"many_to_many": elastic_mm_ok},
        }),
    );
}
