//! Reproduces paper Table 5: utility comparison of wPINQ and FLEX
//! (elastic sensitivity) on six representative counting queries using
//! join, at ε = 0.1, 100 runs each, public `cities` handled via wPINQ
//! `Select` (lookup) rather than `Join` — mirroring the paper's setup.
//!
//! Error is measured against the *true* (unweighted) SQL results for both
//! mechanisms, so wPINQ's error includes the bias its join weight
//! rescaling introduces — the effect the paper's comparison captures.

use flex_bench::{uber_db, write_json, Table};
use flex_core::{run_sql, PrivacyParams};
use flex_db::{Database, Value};
use flex_mechanisms::WeightedDataset;
use flex_workloads::uber::table5_queries;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUNS: usize = 100;

/// The paper runs this comparison at ε = 0.1 against multi-billion-row
/// production tables, where counts dwarf the smooth-sensitivity noise
/// floor (≈ 0.74·ln(2/δ)/ε² for low-mf joins). Our synthetic tables are
/// five orders of magnitude smaller, so we scale ε to keep the
/// floor-to-count ratio in the paper's regime; wPINQ uses the same ε, and
/// its join *bias* — the effect the comparison isolates — is
/// ε-independent. See EXPERIMENTS.md.
const EPS: f64 = 2.0;

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Relative-error (%) of estimates vs truths, skipping zero truths;
/// returns the median across cells.
fn rel_err(estimates: &[f64], truths: &[f64]) -> f64 {
    let errs: Vec<f64> = estimates
        .iter()
        .zip(truths)
        .filter(|(_, t)| **t != 0.0)
        .map(|(e, t)| ((e - t) / t).abs() * 100.0)
        .collect();
    median(errs)
}

/// One wPINQ execution of program `no`, returning (estimates, truths).
fn run_wpinq(no: u32, db: &Database, rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
    let trips = WeightedDataset::from_table(db.table("trips").unwrap());
    let drivers = WeightedDataset::from_table(db.table("drivers").unwrap());
    let tags = WeightedDataset::from_table(db.table("user_tags").unwrap());
    let analytics = WeightedDataset::from_table(db.table("analytics").unwrap());
    let cities = db.table("cities").unwrap();

    // trips columns: id, driver_id, rider_id, city_id, status, fare, trip_date
    // drivers columns: id, city_id, vehicle, status, signup_date
    let drivers_renamed = drivers.clone().with_columns(vec![
        "d_id".into(),
        "d_city_id".into(),
        "d_vehicle".into(),
        "d_status".into(),
        "d_signup".into(),
    ]);

    match no {
        1 => {
            // Distinct drivers with a completed SF trip who enrolled elsewhere.
            let sf = trips
                .where_(|r| r[4] == Value::str("completed"))
                .lookup_join("city_id", cities, "id")
                .where_(|r| r[8] == Value::str("san francisco"));
            let joined = sf.join("driver_id", &drivers_renamed, "d_id");
            // trips(7) + cities(2) = 9 cols, then drivers: d_city_id at 10.
            let moved = joined.where_(|r| r[3].sql_eq(&r[10]) == Some(false));
            let est = moved.distinct(&["driver_id"]).noisy_count(EPS, rng);
            let truth = scalar(
                db,
                "SELECT COUNT(DISTINCT d.id) FROM trips t \
                 JOIN drivers d ON t.driver_id = d.id \
                 JOIN cities c ON t.city_id = c.id \
                 WHERE c.name = 'san francisco' AND t.status = 'completed' \
                 AND d.city_id <> t.city_id",
            );
            (vec![est], vec![truth])
        }
        2 => {
            // Active drivers tagged duplicate after June 6.
            let filtered_tags = tags.where_(|r| {
                r[1] == Value::str("duplicate_account")
                    && r[2].sql_cmp(&Value::str("2016-06-06")) == Some(std::cmp::Ordering::Greater)
            });
            let active = drivers_renamed.where_(|r| r[3] == Value::str("active"));
            let est = active
                .join("d_id", &filtered_tags, "user_id")
                .noisy_count(EPS, rng);
            let truth = scalar(
                db,
                "SELECT COUNT(*) FROM drivers d JOIN user_tags u ON d.id = u.user_id \
                 WHERE d.status = 'active' AND u.tag = 'duplicate_account' \
                 AND u.tagged_at > '2016-06-06'",
            );
            (vec![est], vec![truth])
        }
        3 => {
            // Motorbike drivers in Hanoi, active, ≥ 10 completed trips.
            let hanoi = drivers_renamed.where_(|r| {
                r[1] == Value::Int(3)
                    && r[2] == Value::str("motorbike")
                    && r[3] == Value::str("active")
            });
            let heavy = analytics
                .where_(|r| r[1].sql_cmp(&Value::Int(10)) != Some(std::cmp::Ordering::Less));
            let est = hanoi
                .join("d_id", &heavy, "driver_id")
                .noisy_count(EPS, rng);
            let truth = scalar(
                db,
                "SELECT COUNT(*) FROM drivers d JOIN analytics a ON d.id = a.driver_id \
                 WHERE d.vehicle = 'motorbike' AND d.city_id = 3 \
                 AND d.status = 'active' AND a.completed_trips >= 10",
            );
            (vec![est], vec![truth])
        }
        4 => {
            // Histogram: daily trips by city on Oct 24, 2016.
            let day = trips
                .where_(|r| r[6] == Value::str("2016-10-24"))
                .lookup_join("city_id", cities, "id");
            let bins: Vec<Value> = cities.rows.iter().map(|r| r[1].clone()).collect();
            let out = day.noisy_count_by_key("cities_name", &bins, EPS, rng);
            let truth = histogram(
                db,
                "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
                 WHERE t.trip_date = '2016-10-24' GROUP BY c.name",
                &bins,
            );
            (out.into_iter().map(|(_, v)| v).collect(), truth)
        }
        5 => {
            // Histogram: trips per driver in Hong Kong, Sept 9 – Oct 3.
            let window = trips.where_(|r| {
                r[6].sql_cmp(&Value::str("2016-09-09")) != Some(std::cmp::Ordering::Less)
                    && r[6].sql_cmp(&Value::str("2016-10-03")) != Some(std::cmp::Ordering::Greater)
            });
            let hk_drivers = drivers_renamed.where_(|r| r[1] == Value::Int(4));
            let joined = window.join("driver_id", &hk_drivers, "d_id");
            // Analyst-specified bins: every driver id.
            let bins: Vec<Value> = db
                .table("drivers")
                .unwrap()
                .rows
                .iter()
                .map(|r| r[0].clone())
                .collect();
            let out = joined.noisy_count_by_key("driver_id", &bins, EPS, rng);
            let truth = histogram(
                db,
                "SELECT t.driver_id, COUNT(*) FROM trips t \
                 JOIN drivers d ON t.driver_id = d.id \
                 WHERE d.city_id = 4 AND t.trip_date BETWEEN '2016-09-09' AND '2016-10-03' \
                 GROUP BY t.driver_id",
                &bins,
            );
            (out.into_iter().map(|(_, v)| v).collect(), truth)
        }
        6 => {
            // Histogram: Sydney drivers by completed-trip bucket.
            let sydney = drivers_renamed.where_(|r| r[1] == Value::Int(2));
            let recent = analytics.where_(|r| {
                r[2].sql_cmp(&Value::str("2016-12-03")) != Some(std::cmp::Ordering::Less)
            });
            let joined = sydney.join("d_id", &recent, "driver_id");
            // Map to bucket labels: analytics completed_trips is column 6.
            let bucketed = joined.select(vec!["bucket".into()], |r| {
                let trips = r[6].as_i64().unwrap_or(0);
                let label = if trips >= 250 {
                    "heavy"
                } else if trips >= 100 {
                    "regular"
                } else {
                    "light"
                };
                vec![Value::str(label)]
            });
            let bins = vec![
                Value::str("heavy"),
                Value::str("regular"),
                Value::str("light"),
            ];
            let out = bucketed.noisy_count_by_key("bucket", &bins, EPS, rng);
            let truth = histogram(
                db,
                "SELECT CASE WHEN a.completed_trips >= 250 THEN 'heavy' \
                             WHEN a.completed_trips >= 100 THEN 'regular' \
                             ELSE 'light' END AS bucket, COUNT(*) \
                 FROM drivers d JOIN analytics a ON d.id = a.driver_id \
                 WHERE d.city_id = 2 AND a.last_trip_date >= '2016-12-03' \
                 GROUP BY CASE WHEN a.completed_trips >= 250 THEN 'heavy' \
                               WHEN a.completed_trips >= 100 THEN 'regular' \
                               ELSE 'light' END",
                &bins,
            );
            (out.into_iter().map(|(_, v)| v).collect(), truth)
        }
        other => panic!("unknown program {other}"),
    }
}

fn scalar(db: &Database, sql: &str) -> f64 {
    db.execute_sql(sql)
        .unwrap()
        .scalar()
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0)
}

/// True histogram values aligned with `bins` (0 for missing bins).
fn histogram(db: &Database, sql: &str, bins: &[Value]) -> Vec<f64> {
    let rs = db.execute_sql(sql).unwrap();
    bins.iter()
        .map(|bin| {
            rs.rows
                .iter()
                .find(|r| r[0].sql_eq(bin) == Some(true))
                .and_then(|r| r[1].as_f64())
                .unwrap_or(0.0)
        })
        .collect()
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("=== Table 5: wPINQ vs FLEX on representative join queries ===");
    println!("(ε = {EPS}, {RUNS} runs per mechanism per query)\n");
    let (db, _) = uber_db(scale);
    let params = PrivacyParams::new(EPS, 1e-8).unwrap();

    let paper: [(f64, f64, f64); 6] = [
        // (population, wPINQ err %, elastic err %)
        (663.0, 45.9, 22.6),
        (734.0, 71.5, 2.8),
        (212.0, 51.4, 4.72),
        (87.0, 11.5, 23.0),
        (1.0, 974.0, 6437.0),
        (72.0, 51.5, 27.8),
    ];

    let mut t = Table::new([
        "Program",
        "population",
        "wPINQ err %",
        "FLEX err %",
        "paper wPINQ",
        "paper FLEX",
    ]);
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x7AB1E5);
    for (no, _desc, sql) in table5_queries() {
        // FLEX: run the SQL through the full mechanism.
        let mut flex_errs = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            match run_sql(&db, &sql, params, &mut rng) {
                Ok(r) => {
                    if let Some(e) = r.median_relative_error_pct() {
                        flex_errs.push(e);
                    }
                }
                Err(e) => {
                    eprintln!("FLEX rejected program {no}: {e}");
                    break;
                }
            }
        }
        // wPINQ: run the equivalent weighted program.
        let mut wpinq_errs = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            let (est, truth) = run_wpinq(no, &db, &mut rng);
            let e = rel_err(&est, &truth);
            if e.is_finite() {
                wpinq_errs.push(e);
            }
        }
        // Population: distinct primary rows after filters (approximated by
        // the true count of the program's base relation).
        let (_, truth) = {
            let mut probe_rng = StdRng::seed_from_u64(1);
            run_wpinq(no, &db, &mut probe_rng)
        };
        let population: f64 = truth.iter().filter(|t| **t > 0.0).sum();
        let fe = median(flex_errs);
        let we = median(wpinq_errs);
        let p = paper[(no - 1) as usize];
        t.row([
            format!("{no}"),
            format!("{population:.0}"),
            format!("{we:.1}"),
            format!("{fe:.1}"),
            format!("{:.1}", p.1),
            format!("{:.1}", p.2),
        ]);
        rows.push(serde_json::json!({
            "program": no, "population": population,
            "wpinq_error_pct": we, "flex_error_pct": fe,
            "paper_wpinq": p.1, "paper_flex": p.2,
        }));
    }
    t.print();
    println!(
        "\n(paper shape: FLEX beats wPINQ on programs 1, 2, 3 and 6 — the\n\
         \x20 weight-rescaling bias dominates; wPINQ wins on 4 and 5, where\n\
         \x20 joins multiply FLEX's sensitivity but wPINQ's weights survive)"
    );

    write_json(
        "table5",
        &serde_json::json!({"epsilon": EPS, "runs": RUNS, "programs": rows}),
    );
}
