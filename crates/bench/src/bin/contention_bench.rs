//! Service hot-path contention benchmark: cache-hit and admission
//! storms at 1→16 threads over the sharded service (see
//! `flex_bench::contention`).
//!
//! ```text
//! contention_bench [--quick] [--out PATH]
//! ```
//!
//! Writes `BENCH_contention.json` with the runner's capture conditions
//! and per-scenario ops/sec + scaling maps. Scaling floors (4-thread
//! and 16-thread cache-hit scaling) are enforced only on runners with
//! enough cores; under-provisioned machines report without failing, the
//! same policy as the parallel-execution scaling gates in `exec_bench`.

use flex_bench::contention;
use serde_json::{json, Value};
use std::process::ExitCode;

struct Args {
    quick: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "BENCH_contention.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown arg: {other}");
                eprintln!("usage: contention_bench [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let available_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let report = contention::run(args.quick);

    let doc = json!({
        "benchmark": "contention_bench",
        "config": {
            "quick": args.quick,
            "thread_steps": contention::THREAD_STEPS.to_vec(),
            "available_cores": available_cores,
            "os": std::env::consts::OS,
            "arch": std::env::consts::ARCH,
        },
        "gates": report.gates.iter().map(|g| json!({
            "scenario": g.name,
            "threads": g.threads,
            "scaling": (g.scaling * 100.0).round() / 100.0,
            "floor": g.floor,
            "min_cores": g.min_cores,
            "enforced": available_cores >= g.min_cores,
        })).collect::<Vec<Value>>(),
        "scenarios": Value::Object(report.scenarios.clone()),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("render report");
    std::fs::write(&args.out, rendered + "\n").expect("write report");
    eprintln!("wrote {}", args.out);

    if contention::enforce_gates(&report.gates, available_cores) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
