//! Reproduces paper Figure 3: the distribution of query population sizes
//! over the experiment workload.

use flex_bench::{measure_workload, uber_db, write_json, Table};
use flex_core::FlexOptions;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("=== Figure 3: distribution of population sizes ===\n");
    let (db, wl) = uber_db(scale);
    // One noiseless trial per query: only populations matter here.
    let measured = measure_workload(&db, &wl, 1.0, 1, &FlexOptions::new(), 11);

    let buckets: [(&str, i64, i64); 4] = [
        ("<100", 0, 99),
        ("100-1K", 100, 999),
        ("1K-10K", 1_000, 9_999),
        (">10K", 10_000, i64::MAX),
    ];
    let paper_pct = [46.73, 12.28, 15.71, 25.28];
    let n = measured.len().max(1) as f64;
    let mut t = Table::new(["Population", "queries", "measured %", "paper %"]);
    let mut rows = Vec::new();
    for ((label, lo, hi), paper) in buckets.iter().zip(paper_pct) {
        let c = measured
            .iter()
            .filter(|m| m.population >= *lo && m.population <= *hi)
            .count();
        t.row([
            label.to_string(),
            c.to_string(),
            format!("{:.1}", 100.0 * c as f64 / n),
            format!("{paper:.2}"),
        ]);
        rows.push(serde_json::json!({
            "bucket": label, "count": c, "pct": 100.0 * c as f64 / n, "paper_pct": paper,
        }));
    }
    t.print();
    println!(
        "\n(the paper's point: populations span from a handful of rows to\n\
         \x20millions; the workload generator reproduces that spread)"
    );

    write_json(
        "fig3",
        &serde_json::json!({"total_queries": measured.len(), "buckets": rows}),
    );
}
