//! Reproduces paper Figure 4: median error vs. population size for
//! queries with no joins (a) and with joins (b), at ε = 0.1 and
//! δ = n^(−ln n).
//!
//! The paper's headline claims, checked here:
//!   * error decreases as population size grows (scale-ε exchangeability);
//!   * the trend and error magnitudes are comparable with and without
//!     joins;
//!   * many-to-many join queries form a higher-error cluster with the
//!     same slope;
//!   * a majority of large-population queries see < 10% error.

use flex_bench::{measure_workload, uber_db, write_json, MeasuredQuery, Table};
use flex_core::FlexOptions;

fn print_series(title: &str, ms: &[&MeasuredQuery]) {
    println!("\n{title}");
    let mut t = Table::new(["query", "population", "median error %"]);
    let mut sorted: Vec<_> = ms.to_vec();
    sorted.sort_by_key(|m| m.population);
    for m in &sorted {
        t.row([
            m.name.clone(),
            m.population.to_string(),
            format!("{:.4}", m.median_error_pct),
        ]);
    }
    t.print();
}

/// Spearman-style check: correlation of rank(population) vs rank(error).
fn rank_correlation(ms: &[&MeasuredQuery]) -> f64 {
    let n = ms.len();
    if n < 3 {
        return 0.0;
    }
    let rank = |key: &dyn Fn(&MeasuredQuery) -> f64| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| key(ms[a]).total_cmp(&key(ms[b])));
        let mut r = vec![0.0; n];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let rp = rank(&|m: &MeasuredQuery| m.population as f64);
    let re = rank(&|m: &MeasuredQuery| m.median_error_pct);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut dp = 0.0;
    let mut de = 0.0;
    for i in 0..n {
        num += (rp[i] - mean) * (re[i] - mean);
        dp += (rp[i] - mean).powi(2);
        de += (re[i] - mean).powi(2);
    }
    num / (dp.sqrt() * de.sqrt()).max(1e-12)
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("=== Figure 4: median error vs population size (ε = 0.1) ===");
    let (db, wl) = uber_db(scale);
    let measured = measure_workload(
        &db,
        &wl,
        0.1,
        flex_bench::DEFAULT_TRIALS,
        &FlexOptions::new(),
        21,
    );

    let no_join: Vec<&MeasuredQuery> = measured.iter().filter(|m| !m.traits.has_join).collect();
    let with_join: Vec<&MeasuredQuery> = measured.iter().filter(|m| m.traits.has_join).collect();

    print_series("(a) queries with no joins", &no_join);
    print_series("(b) queries with joins", &with_join);

    let corr_nj = rank_correlation(&no_join);
    let corr_j = rank_correlation(&with_join);
    println!("\nrank correlation population↔error (expect strongly negative):");
    println!("  no joins  : {corr_nj:.2}");
    println!("  with joins: {corr_j:.2}");

    let high_utility = |ms: &[&MeasuredQuery]| {
        let big: Vec<_> = ms.iter().filter(|m| m.population >= 100).collect();
        let ok = big.iter().filter(|m| m.median_error_pct < 10.0).count();
        (ok, big.len())
    };
    let (ok_nj, n_nj) = high_utility(&no_join);
    let (ok_j, n_j) = high_utility(&with_join);
    println!("\nqueries with population ≥ 100 achieving < 10% error:");
    println!("  no joins  : {ok_nj}/{n_nj}");
    println!("  with joins: {ok_j}/{n_j}");
    println!("(paper: high utility for the majority of queries in both panels)");

    let m2m: Vec<&MeasuredQuery> = measured.iter().filter(|m| m.traits.many_to_many).collect();
    if !m2m.is_empty() {
        let med_m2m = median(m2m.iter().map(|m| m.median_error_pct));
        let med_other = median(
            with_join
                .iter()
                .filter(|m| !m.traits.many_to_many)
                .map(|m| m.median_error_pct),
        );
        println!(
            "\nmany-to-many cluster: median error {med_m2m:.1}% vs {med_other:.1}% \
             for other join queries (paper: an upward-shifted cluster)"
        );
    }

    write_json(
        "fig4",
        &serde_json::json!({
            "epsilon": 0.1,
            "no_join": series_json(&no_join),
            "with_join": series_json(&with_join),
            "rank_correlation": {"no_join": corr_nj, "with_join": corr_j},
            "high_utility": {"no_join": [ok_nj, n_nj], "with_join": [ok_j, n_j]},
        }),
    );
}

fn median<I: Iterator<Item = f64>>(it: I) -> f64 {
    let mut v: Vec<f64> = it.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn series_json(ms: &[&MeasuredQuery]) -> serde_json::Value {
    serde_json::Value::Array(
        ms.iter()
            .map(|m| {
                serde_json::json!({
                    "name": m.name,
                    "population": m.population,
                    "median_error_pct": m.median_error_pct,
                    "many_to_many": m.traits.many_to_many,
                })
            })
            .collect(),
    )
}
