//! Reproduces paper Figure 7: impact of the public-table optimization
//! (§3.6) — error-bucket histograms with the optimization enabled vs
//! disabled, at ε = 0.1 (population ≥ 100 queries only).

use flex_bench::{error_buckets, measure_workload, uber_db, write_json, Table};
use flex_core::{AnalysisOptions, FlexOptions};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("=== Figure 7: impact of the public-table optimization ===\n");
    let (db, wl) = uber_db(scale);

    let run = |ignore_public: bool, seed: u64| {
        let opts = FlexOptions {
            analysis: AnalysisOptions {
                ignore_public_tables: ignore_public,
            },
            ..FlexOptions::new()
        };
        let measured = measure_workload(&db, &wl, 0.1, flex_bench::DEFAULT_TRIALS, &opts, seed);
        measured
            .into_iter()
            .filter(|m| m.population >= 100)
            .collect::<Vec<_>>()
    };

    let with_opt = run(false, 41);
    let without_opt = run(true, 42);

    let optimized = wl.iter().filter(|q| q.traits.uses_public_table).count();
    println!(
        "workload: {} queries, {} ({:.1}%) join a public table (paper: 23.4%)\n",
        wl.len(),
        optimized,
        100.0 * optimized as f64 / wl.len() as f64
    );

    let b_with = error_buckets(
        &with_opt
            .iter()
            .map(|m| m.median_error_pct)
            .collect::<Vec<_>>(),
    );
    let b_without = error_buckets(
        &without_opt
            .iter()
            .map(|m| m.median_error_pct)
            .collect::<Vec<_>>(),
    );

    let paper: [(&str, f64, f64); 6] = [
        ("<1%", 49.85, 28.53),
        ("1-5%", 7.40, 7.16),
        ("5-10%", 2.63, 2.97),
        ("10-25%", 3.16, 2.87),
        ("25-100%", 2.47, 3.04),
        ("More", 34.50, 54.93),
    ];

    let mut t = Table::new([
        "Median error",
        "with opt %",
        "without opt %",
        "paper with",
        "paper without",
    ]);
    let mut rows = Vec::new();
    for (bi, (label, pw, pwo)) in paper.iter().enumerate() {
        t.row([
            label.to_string(),
            format!("{:.1}", b_with[bi].1),
            format!("{:.1}", b_without[bi].1),
            format!("{pw:.2}"),
            format!("{pwo:.2}"),
        ]);
        rows.push(serde_json::json!({
            "bucket": label, "with": b_with[bi].1, "without": b_without[bi].1,
            "paper_with": pw, "paper_without": pwo,
        }));
    }
    t.print();
    println!(
        "\n(expected shape: the optimization moves mass from the worst bucket\n\
         \x20 ('More') into the best one ('<1%'), with little change between)"
    );

    write_json("fig7", &serde_json::json!({"buckets": rows}));
}
