//! Reproduces paper Figure 6: effect of the privacy budget ε on median
//! error, as a histogram of queries per error bucket for
//! ε ∈ {0.1, 1, 10} (queries with population < 100 excluded, per §5.2.2).

use flex_bench::{error_buckets, measure_workload, uber_db, write_json, Table};
use flex_core::FlexOptions;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("=== Figure 6: effect of ε on median error ===\n");
    let (db, wl) = uber_db(scale);

    let paper: [(&str, [f64; 3]); 6] = [
        ("<1%", [49.85, 60.43, 66.17]),
        ("1-5%", [7.40, 4.79, 3.23]),
        ("5-10%", [2.63, 0.76, 1.77]),
        ("10-25%", [3.16, 1.57, 3.30]),
        ("25-100%", [2.47, 3.27, 4.52]),
        ("More", [34.50, 29.18, 21.02]),
    ];

    let mut per_eps = Vec::new();
    for (i, eps) in [0.1, 1.0, 10.0].into_iter().enumerate() {
        let measured = measure_workload(
            &db,
            &wl,
            eps,
            flex_bench::DEFAULT_TRIALS,
            &FlexOptions::new(),
            31 + i as u64,
        );
        let errors: Vec<f64> = measured
            .iter()
            .filter(|m| m.population >= 100)
            .map(|m| m.median_error_pct)
            .collect();
        per_eps.push((eps, error_buckets(&errors), errors.len()));
    }

    let mut t = Table::new([
        "Median error",
        "ε=0.1 %",
        "ε=1 %",
        "ε=10 %",
        "paper ε=0.1",
        "paper ε=1",
        "paper ε=10",
    ]);
    let mut rows = Vec::new();
    for (bi, (label, paper_vals)) in paper.iter().enumerate() {
        t.row([
            label.to_string(),
            format!("{:.1}", per_eps[0].1[bi].1),
            format!("{:.1}", per_eps[1].1[bi].1),
            format!("{:.1}", per_eps[2].1[bi].1),
            format!("{:.2}", paper_vals[0]),
            format!("{:.2}", paper_vals[1]),
            format!("{:.2}", paper_vals[2]),
        ]);
        rows.push(serde_json::json!({
            "bucket": label,
            "measured": [per_eps[0].1[bi].1, per_eps[1].1[bi].1, per_eps[2].1[bi].1],
            "paper": paper_vals.to_vec(),
        }));
    }
    t.print();
    println!(
        "\n(expected shape: mass shifts toward the low-error buckets as ε\n\
         \x20 grows; a residual 'More' bucket persists — those are inherently\n\
         \x20 sensitive queries, see table4)"
    );

    write_json(
        "fig6",
        &serde_json::json!({
            "epsilons": [0.1, 1.0, 10.0],
            "queries_measured": per_eps[0].2,
            "buckets": rows,
        }),
    );
}
