//! Reproduces paper Table 2: performance of FLEX-based differential
//! privacy — average and maximum time for original query execution,
//! elastic-sensitivity analysis, and output perturbation, plus the §5.1
//! success-rate breakdown.

use flex_bench::{measure_workload, uber_db, write_json, Table};
use flex_core::{analyze, FlexOptions};
use flex_workloads::corpus::{self, CorpusConfig};
use std::time::Duration;

fn fmt(d: Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("=== Table 2: performance of FLEX (workload scale {scale}) ===\n");
    let (db, wl) = uber_db(scale);
    let measured = measure_workload(&db, &wl, 0.1, 3, &FlexOptions::new(), 7);

    let agg = |f: &dyn Fn(&flex_bench::MeasuredQuery) -> Duration| {
        let times: Vec<Duration> = measured.iter().map(f).collect();
        let avg = times.iter().sum::<Duration>() / times.len().max(1) as u32;
        let max = times.iter().max().copied().unwrap_or_default();
        (avg, max)
    };
    let (exec_avg, exec_max) = agg(&|m| m.timings.execution);
    let (ana_avg, ana_max) = agg(&|m| m.timings.analysis);
    let (pert_avg, pert_max) = agg(&|m| m.timings.perturbation);

    let mut t = Table::new(["Stage", "avg", "max", "paper avg", "paper max"]);
    t.row([
        "Original query".to_string(),
        fmt(exec_avg),
        fmt(exec_max),
        "42.4 s".into(),
        "3452 s".into(),
    ]);
    t.row([
        "Elastic sensitivity analysis".to_string(),
        fmt(ana_avg),
        fmt(ana_max),
        "7 ms".into(),
        "1.2 s".into(),
    ]);
    t.row([
        "Output perturbation".to_string(),
        fmt(pert_avg),
        fmt(pert_max),
        "4.9 ms".into(),
        "2.4 s".into(),
    ]);
    t.print();
    let overhead = 100.0 * (ana_avg + pert_avg).as_secs_f64() / exec_avg.as_secs_f64().max(1e-12);
    println!(
        "\nFLEX overhead vs. original execution: {overhead:.2}% \
         (paper: 0.03% — their queries ran on production warehouses for\n\
         \x20 42 s on average; the *shape* to check is analysis ≪ execution)"
    );

    // §5.1 success rate of the analysis. The paper's experiment dataset is
    // its 9862 *statistical* (counting) queries, so the corpus is filtered
    // to statistical queries before measuring, and analyzed against a
    // catalog database matching the corpus schema.
    println!("\n--- §5.1 success rate of the analysis ---");
    let corpus_queries: Vec<_> = corpus::generate(&CorpusConfig {
        n_queries: 20_000,
        ..CorpusConfig::default()
    })
    .into_iter()
    .filter(flex_core::study::query_is_statistical)
    .collect();
    let catalog = corpus::catalog_database(100, 3);
    let mut ok = 0usize;
    let mut unsupported = 0usize;
    let mut other = 0usize;
    for q in &corpus_queries {
        match analyze(q, &catalog) {
            Ok(_) => ok += 1,
            Err(e) => match e.category() {
                "unsupported query" => unsupported += 1,
                _ => other += 1,
            },
        }
    }
    let n = corpus_queries.len() as f64;
    let mut t = Table::new(["Outcome", "measured %", "paper %"]);
    t.row([
        "analysis succeeds".to_string(),
        format!("{:.1}", 100.0 * ok as f64 / n),
        "76.0".into(),
    ]);
    t.row([
        "unsupported query".to_string(),
        format!("{:.1}", 100.0 * unsupported as f64 / n),
        "14.1".into(),
    ]);
    t.row([
        "other (parse/schema)".to_string(),
        format!("{:.1}", 100.0 * other as f64 / n),
        "9.8".into(),
    ]);
    t.print();
    println!(
        "(the corpus generator emits raw-data and non-equijoin queries at the\n\
         \x20paper's observed rates; parse failures do not occur because the\n\
         \x20corpus is emitted by our own printer)"
    );

    write_json(
        "table2",
        &serde_json::json!({
            "execution_avg_ms": exec_avg.as_secs_f64() * 1e3,
            "execution_max_ms": exec_max.as_secs_f64() * 1e3,
            "analysis_avg_ms": ana_avg.as_secs_f64() * 1e3,
            "analysis_max_ms": ana_max.as_secs_f64() * 1e3,
            "perturbation_avg_ms": pert_avg.as_secs_f64() * 1e3,
            "perturbation_max_ms": pert_max.as_secs_f64() * 1e3,
            "overhead_pct": overhead,
            "success_rate": ok as f64 / n,
            "paper": {"analysis_avg_ms": 7.03, "perturbation_avg_ms": 4.86,
                       "overhead_pct": 0.03, "success_rate": 0.76},
        }),
    );
}
