//! Ablations for the design choices DESIGN.md calls out (not a paper
//! figure — engineering evidence for this reproduction):
//!
//! 1. **Theorem 3 scan cutoff** — smoothing scans `k ≤ ⌈deg/β⌉` instead of
//!    `k ≤ n`; same result, orders of magnitude fewer evaluations.
//! 2. **Max-node dominance collapse** — non-self-join `max` nodes collapse
//!    when one polynomial dominates coefficient-wise, keeping sensitivity
//!    expressions (and eval cost) small on join-heavy queries.
//! 3. **Histogram factor 2** — Figure 1(b)'s `2·Ŝ_R` for `Count_G` is
//!    necessary: one modified tuple really does move two bins.
//! 4. **Metric freshness** — the §4 requirement that `mf` be recomputed on
//!    update: a stale (understated) metric breaks the Theorem 1 bound.

use flex_bench::write_json;
use flex_core::{analyze, PrivacyParams, SensExpr};
use flex_db::{DataType, Database, Schema, Value};
use flex_sql::parse_query;
use std::time::Instant;

fn main() {
    println!("=== ablations ===\n");

    // ---- 1. Theorem 3 cutoff. -------------------------------------------
    let sens = SensExpr::affine(100.0).mul(SensExpr::affine(50.0)); // deg 2
    let params = PrivacyParams::new(0.1, 1e-8).unwrap();
    let beta = params.beta();
    let n: u64 = 100_000_000;

    let t0 = Instant::now();
    let fast = flex_core::smooth(&sens, params, n as usize).unwrap();
    let fast_time = t0.elapsed();

    let t0 = Instant::now();
    // Exhaustive scan over a large range (1e7 is already generous; the
    // full n would take 10× longer still).
    let mut slow_best = 0.0f64;
    for k in 0..10_000_000u64 {
        slow_best = slow_best.max((-beta * k as f64).exp() * sens.eval(k));
    }
    let slow_time = t0.elapsed();
    println!("1. Theorem 3 cutoff (degree 2, β = {beta:.2e}):");
    println!(
        "   cutoff scan : S = {:.2} at k = {} in {:?}",
        fast.smooth_bound, fast.argmax_k, fast_time
    );
    println!("   exhaustive  : S = {slow_best:.2} (first 10M of {n} distances) in {slow_time:?}");
    assert!((fast.smooth_bound - slow_best).abs() <= 1e-9 * slow_best.max(1.0));
    println!(
        "   → identical result, {}x faster\n",
        (slow_time.as_nanos() / fast_time.as_nanos().max(1))
    );

    // ---- 2. Max-collapse. -------------------------------------------------
    // Chain of non-self joins: each step max(mf_l·S_r, mf_r·S_l). With
    // dominance collapse most max nodes fold into one branch.
    let mut db = Database::new();
    for (i, t) in ["t0", "t1", "t2", "t3", "t4", "t5"].iter().enumerate() {
        db.create_table(*t, Schema::of(&[("k", DataType::Int)]))
            .unwrap();
        db.insert(
            t,
            (0..40 + i as i64)
                .map(|v| vec![Value::Int(v % (4 + i as i64))])
                .collect(),
        )
        .unwrap();
    }
    let sql = "SELECT COUNT(*) FROM t0 \
               JOIN t1 ON t0.k = t1.k JOIN t2 ON t1.k = t2.k \
               JOIN t3 ON t2.k = t3.k JOIN t4 ON t3.k = t4.k \
               JOIN t5 ON t4.k = t5.k";
    let a = analyze(&parse_query(sql).unwrap(), &db).unwrap();
    let s = a.sensitivity();
    let nodes = count_nodes(&s);
    let max_nodes = count_max(&s);
    println!("2. max-collapse on a 5-join chain:");
    println!("   sensitivity tree: {nodes} nodes, {max_nodes} surviving max nodes");
    println!("   (a naive encoding keeps 2^5 − 1 = 31 max nodes)\n");

    // ---- 3. Histogram factor 2. ------------------------------------------
    // A modified tuple moving between two bins changes the histogram's L1
    // by 2; the factor-1 variant would under-noise.
    let mut hdb = Database::new();
    hdb.create_table("t", Schema::of(&[("g", DataType::Int)]))
        .unwrap();
    hdb.insert("t", (0..10).map(|i| vec![Value::Int(i % 2)]).collect())
        .unwrap();
    let base = hdb
        .execute_sql("SELECT g, COUNT(*) FROM t GROUP BY g")
        .unwrap();
    let mut hdb2 = Database::new();
    hdb2.create_table("t", Schema::of(&[("g", DataType::Int)]))
        .unwrap();
    let mut rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::Int(i % 2)]).collect();
    rows[0] = vec![Value::Int(1)]; // move one tuple from bin 0 to bin 1
    hdb2.insert("t", rows).unwrap();
    let moved = hdb2
        .execute_sql("SELECT g, COUNT(*) FROM t GROUP BY g")
        .unwrap();
    let l1: f64 = base
        .rows
        .iter()
        .zip(&moved.rows)
        .map(|(a, b)| (a[1].as_f64().unwrap() - b[1].as_f64().unwrap()).abs())
        .sum();
    let h = analyze(
        &parse_query("SELECT g, COUNT(*) FROM t GROUP BY g").unwrap(),
        &hdb,
    )
    .unwrap();
    println!("3. histogram factor 2:");
    println!("   observed L1 change from one modified tuple: {l1}");
    println!(
        "   elastic sensitivity (with factor 2): {}",
        h.sensitivity().eval(0)
    );
    assert_eq!(l1, 2.0);
    assert_eq!(h.sensitivity().eval(0), 2.0);
    println!("   → factor 1 would violate the bound\n");

    // ---- 4. Metric freshness. ---------------------------------------------
    let mut mdb = Database::new();
    mdb.create_table("a", Schema::of(&[("k", DataType::Int)]))
        .unwrap();
    mdb.create_table("b", Schema::of(&[("k", DataType::Int)]))
        .unwrap();
    mdb.insert("a", (0..20).map(|_| vec![Value::Int(1)]).collect())
        .unwrap();
    mdb.insert("b", vec![vec![Value::Int(1)]]).unwrap();
    let q = parse_query("SELECT COUNT(*) FROM b JOIN a ON b.k = a.k").unwrap();
    let fresh = analyze(&q, &mdb).unwrap().sensitivity().eval(0);
    // Stale metric: pretend a.k's max frequency is still 5.
    mdb.metrics_mut().set_max_freq("a", "k", 5);
    let stale = analyze(&q, &mdb).unwrap().sensitivity().eval(0);
    // True local sensitivity: modifying b's single row can add/remove 20
    // joined rows.
    println!("4. metric freshness:");
    println!("   fresh mf = 20 → Ŝ(0) = {fresh}; stale mf = 5 → Ŝ(0) = {stale}");
    println!("   true local sensitivity: 20 (modifying b's row toggles all matches)");
    assert!(fresh >= 20.0 && stale < 20.0);
    println!("   → stale metrics silently break Theorem 1; hence the §4 trigger\n");

    write_json(
        "ablation",
        &serde_json::json!({
            "cutoff_speedup": slow_time.as_nanos() as f64 / fast_time.as_nanos().max(1) as f64,
            "cutoff_argmax_k": fast.argmax_k,
            "chain_tree_nodes": nodes,
            "chain_max_nodes": max_nodes,
            "histogram_l1": l1,
            "stale_metric_bound": stale,
            "fresh_metric_bound": fresh,
        }),
    );
}

fn count_nodes(e: &SensExpr) -> usize {
    match e {
        SensExpr::Poly(_) => 1,
        SensExpr::Add(a, b) | SensExpr::Mul(a, b) | SensExpr::Max(a, b) => {
            1 + count_nodes(a) + count_nodes(b)
        }
    }
}

fn count_max(e: &SensExpr) -> usize {
    match e {
        SensExpr::Poly(_) => 0,
        SensExpr::Add(a, b) | SensExpr::Mul(a, b) => count_max(a) + count_max(b),
        SensExpr::Max(a, b) => 1 + count_max(a) + count_max(b),
    }
}
