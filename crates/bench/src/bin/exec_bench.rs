//! Execution-engine microbenchmarks with a CI regression gate.
//!
//! Measures median ns/op for the scenarios the serving path depends on —
//! the vectorized scan/aggregate shapes, the vectorized hash-join
//! pipeline (`join-count`, `join-filter-sum`), their morsel-parallel
//! variants (`parallel-*`, at [`PARALLEL_WORKERS`] workers), the
//! service's noisy-answer cache hit, and the hot-path contention storms
//! (`contention-*`, from `flex_bench::contention`: multi-threaded
//! cache-hit and ledger-admission throughput over the sharded service)
//! — and writes `BENCH_exec.json`. Four gates can fail the run (which
//! is what the CI `bench` job enforces on PRs):
//!
//! 1. vectorized scenarios must keep a ≥ `SPEEDUP_FLOOR`× speedup over
//!    the row interpreter measured in the same run (machine-independent);
//! 2. the gated parallel scenarios must scale ≥ `SCALING_FLOOR`× over
//!    the sequential vectorized engine measured in the same run — but
//!    only when the runner actually has ≥ `PARALLEL_WORKERS` cores
//!    (`std::thread::available_parallelism`), so core-starved runners
//!    report the scaling without flaking the gate;
//! 3. the contention cache-hit storm must scale ≥ 2× at 4 threads on
//!    ≥ 4-core runners and ≥ 4× at 16 threads on ≥ 8-core runners,
//!    with the same report-only fallback on core-starved runners;
//! 4. against the committed `BENCH_exec.baseline.json`, no scenario may
//!    regress more than `REGRESSION_FACTOR`× after normalizing by the
//!    run's median current/baseline ratio — the "machine factor" that
//!    cancels out CI runners being faster or slower than the machine
//!    that recorded the baseline. This normalized gate is what covers
//!    the parallel scenarios' absolute medians across runner hardware.
//!
//! Usage:
//!   exec_bench [--quick] [--out PATH] [--baseline PATH] [--write-baseline]
//!
//! `--quick` shrinks the database and iteration counts for CI; the gate
//! compares like-for-like because the committed baseline is also recorded
//! with `--quick`. Before timing anything, every SQL scenario is executed
//! on both engines and the `ResultSet`s are compared — the speedup is
//! only reported if the answers (and therefore downstream DP noise
//! calibration) are byte-identical.

use flex_core::{run_sql_with, FlexOptions, PrivacyParams};
use flex_service::{MetricsReport, QueryService, QueryTrace, ServiceConfig, SlowQuery, Telemetry};
use flex_sql::parse_query;
use flex_workloads::uber::{self, UberConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A scenario fails the gate when its median exceeds baseline × this
/// (after normalizing by the run's median cur/baseline ratio, which
/// cancels out runner-speed differences from the baseline machine).
const REGRESSION_FACTOR: f64 = 1.5;

/// Default floor: vectorized scenarios must stay at least this much
/// faster than the row interpreter measured in the same run
/// (machine-independent). Individual scenarios may demand more — the
/// top-K pushdown scenario must clear [`TOPK_SPEEDUP_FLOOR`].
const SPEEDUP_FLOOR: f64 = 3.0;

/// `order-by-limit-topk` replaces a full materialize-and-sort with a
/// bounded heap over the selection vector; anything below this floor
/// means the pushdown stopped engaging.
const TOPK_SPEEDUP_FLOOR: f64 = 10.0;

/// Floor for the full-sort `order-by` scenario. Unlike the top-K shape,
/// a full ORDER BY is O(n log n) on *both* engines — the vectorized win
/// (typed pair sort + late materialization vs row sort + row permute) is
/// structural but bounded, so the floor sits below the generic 3x.
const SORT_SPEEDUP_FLOOR: f64 = 2.5;

/// Floor for `three-way-join-count`. A left-deep tree runs two columnar
/// hash joins back to back while the row interpreter materializes and
/// re-probes row vectors twice; the acceptance bar for the plan-IR
/// executor is a 5x win over the row engine.
const THREE_WAY_JOIN_SPEEDUP_FLOOR: f64 = 5.0;

/// Floor for `union-distinct`. Both engines pay the same hash-dedup on
/// the concatenated arms; the vectorized win is the columnar arm scans
/// and typed dedup keys, structural but smaller than a full scan win.
const UNION_SPEEDUP_FLOOR: f64 = 2.0;

/// Morsel workers for the parallel scenarios.
const PARALLEL_WORKERS: usize = 4;

/// Default scaling floor: gated parallel scenarios must beat the
/// sequential vectorized engine by at least this factor at
/// [`PARALLEL_WORKERS`] workers — enforced only on runners with that
/// many cores available.
const SCALING_FLOOR: f64 = 2.0;

/// Floor for `parallel-order-by`. The parallel sort is merge-bound (the
/// loser-tree tail is sequential), so the requirement is "parallelism
/// never *loses*" — with a noise margin below 1.0 so a run-to-run
/// wobble around parity cannot flake CI; real regressions (a parallel
/// path going materially slower than sequential) still trip it.
const SORT_SCALING_FLOOR: f64 = 0.9;

struct Args {
    quick: bool,
    out: String,
    baseline: String,
    telemetry_out: String,
    write_baseline: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "BENCH_exec.json".to_string(),
        baseline: "BENCH_exec.baseline.json".to_string(),
        telemetry_out: "BENCH_exec_telemetry.json".to_string(),
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--write-baseline" => args.write_baseline = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--baseline" => args.baseline = it.next().expect("--baseline needs a path"),
            "--telemetry-out" => {
                args.telemetry_out = it.next().expect("--telemetry-out needs a path")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Median wall time in ns over `iters` runs (after one warmup run).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let args = parse_args();
    let (trips, iters, cache_iters) = if args.quick {
        (100_000, 15, 2_000)
    } else {
        (100_000, 60, 10_000)
    };

    eprintln!("generating uber database ({trips} trips)...");
    let db = uber::generate(&UberConfig {
        trips,
        drivers: 4_000,
        riders: 8_000,
        user_tags: 4_000,
        ..UberConfig::default()
    });

    // (name, sql, speedup_floor) — scenarios with a floor report the
    // row-engine median and the speedup alongside and must clear their
    // floor in the gate. The tail scenarios cover the vectorized ORDER
    // BY / DISTINCT / LIMIT pipeline: `order-by-limit-topk` is the
    // dashboard shape (bounded top-K heap, never materializes more than
    // k rows), `order-by` the full index sort + late materialization,
    // `distinct-scan` the typed-key dedupe.
    let sql_scenarios = [
        (
            "scan-filter-count",
            "SELECT COUNT(*) FROM trips WHERE fare > 20",
            Some(SPEEDUP_FLOOR),
        ),
        (
            "group-by-sum",
            "SELECT city_id, SUM(fare) FROM trips GROUP BY city_id",
            Some(SPEEDUP_FLOOR),
        ),
        (
            "join-count",
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
             WHERE d.status = 'active'",
            Some(SPEEDUP_FLOOR),
        ),
        (
            "join-filter-sum",
            "SELECT d.city_id, SUM(t.fare) FROM trips t \
             JOIN drivers d ON t.driver_id = d.id \
             WHERE d.status = 'active' GROUP BY d.city_id",
            Some(SPEEDUP_FLOOR),
        ),
        // Plan-IR scenarios: a left-deep three-table equijoin tree, a
        // derived table feeding a columnar aggregate, and a UNION
        // deduplicated by the vectorized DISTINCT machinery.
        (
            "three-way-join-count",
            "SELECT COUNT(*) FROM trips t \
             JOIN drivers d ON t.driver_id = d.id \
             JOIN riders r ON t.rider_id = r.id \
             WHERE d.status = 'active'",
            Some(THREE_WAY_JOIN_SPEEDUP_FLOOR),
        ),
        (
            "derived-table-agg",
            "SELECT s.city_id, SUM(s.fare) FROM \
             (SELECT city_id, fare FROM trips WHERE fare > 20) s \
             GROUP BY s.city_id",
            Some(SPEEDUP_FLOOR),
        ),
        (
            "union-distinct",
            "SELECT city_id FROM trips WHERE fare > 30 \
             UNION SELECT city_id FROM trips WHERE status = 'completed'",
            Some(UNION_SPEEDUP_FLOOR),
        ),
        (
            "order-by-limit-topk",
            "SELECT trip_date, fare FROM trips WHERE fare > 20 \
             ORDER BY fare DESC, trip_date LIMIT 10",
            Some(TOPK_SPEEDUP_FLOOR),
        ),
        (
            "order-by",
            "SELECT rider_id, fare FROM trips ORDER BY fare DESC",
            Some(SORT_SPEEDUP_FLOOR),
        ),
        (
            "distinct-scan",
            "SELECT DISTINCT city_id, status FROM trips",
            Some(SPEEDUP_FLOOR),
        ),
    ];

    // A real telemetry instance fed by the benchmark itself: every gated
    // scenario's trace and median latency lands in it, and the snapshot
    // is written as `BENCH_exec_telemetry.json` (a CI artifact) so a
    // routing or pushdown regression is visible in the uploaded metrics,
    // not just in the exit code.
    let telemetry = Telemetry::default();
    telemetry.record_parallelism(1);

    let mut scenarios: Vec<(String, Value)> = Vec::new();
    let mut speedup_gate: Vec<(String, f64, f64)> = Vec::new();
    for (name, sql, floor) in sql_scenarios {
        let q = parse_query(sql).expect("benchmark SQL parses");

        // Correctness gate before any timing: identical answers on both
        // engines (this is what keeps DP noise calibration unchanged),
        // and the expected routing — every scenario here exists to time
        // the vectorized engine, so a silent fallback (which would
        // benchmark the row interpreter against itself) fails loudly
        // with the concrete route decision. The top-K scenario must also
        // report the bounded-heap pushdown actually engaging.
        let (trace, fast) = db.execute_traced(&q);
        let fast = fast.expect("query executes");
        assert!(
            trace.vectorized(),
            "`{name}` must route to the vectorized engine, got `{}`",
            trace.route
        );
        assert_eq!(
            trace.topk,
            name == "order-by-limit-topk",
            "`{name}`: top-K pushdown flag disagrees with the scenario shape"
        );
        let slow = db.execute_row(&q).expect("query executes on row engine");
        assert_eq!(
            fast, slow,
            "engine results differ on `{name}` — refusing to benchmark"
        );

        let med = median_ns(iters, || {
            std::hint::black_box(db.execute(&q).unwrap());
        });
        let bench_trace = QueryTrace {
            execution: Duration::from_nanos(med),
            exec: trace,
            ..QueryTrace::default()
        };
        telemetry.record_completed(&bench_trace);
        telemetry.record_release(SlowQuery {
            analyst: "exec_bench".to_string(),
            canonical_sql: sql.to_string(),
            epsilon: 0.0,
            delta: 0.0,
            trace: bench_trace,
        });
        let mut entry = vec![("median_ns".to_string(), Value::from(med))];
        if let Some(floor) = floor {
            let row_med = median_ns(iters, || {
                std::hint::black_box(db.execute_row(&q).unwrap());
            });
            let speedup = row_med as f64 / med.max(1) as f64;
            entry.push(("row_median_ns".to_string(), Value::from(row_med)));
            entry.push((
                "speedup".to_string(),
                Value::from((speedup * 100.0).round() / 100.0),
            ));
            eprintln!("{name:>18}: {med:>10} ns/op (row: {row_med} ns/op, {speedup:.2}x)");
            speedup_gate.push((name.to_string(), speedup, floor));
        } else {
            eprintln!("{name:>18}: {med:>10} ns/op");
        }
        scenarios.push((name.to_string(), Value::Object(entry)));
    }

    // Morsel-parallel variants: the same vectorized scenarios at
    // PARALLEL_WORKERS workers. `scaling` is parallel-vs-sequential from
    // this run, so runner speed cancels out; scenarios with a floor must
    // clear it when the runner has the cores for it.
    // `parallel-group-by-sum` is gated since the reduction tree moved
    // the numeric fold onto the workers: each morsel now produces leaf
    // sums instead of shipping values back for a sequential coordinator
    // replay, so the aggregate phase genuinely parallelizes and must
    // keep clearing [`SCALING_FLOOR`]. `parallel-order-by` exercises the
    // morsel-local sorts + loser-tree merge and the parallel late
    // materialization; see [`SORT_SCALING_FLOOR`] for why its floor sits
    // just below parity, with the upside reported as `scaling`.
    let parallel_scenarios = [
        ("scan-filter-count", Some(SCALING_FLOOR)),
        ("group-by-sum", Some(SCALING_FLOOR)),
        ("join-filter-sum", Some(SCALING_FLOOR)),
        ("order-by", Some(SORT_SCALING_FLOOR)),
    ];
    let mut scaling_gate: Vec<(String, f64, f64)> = Vec::new();
    for (base, floor) in parallel_scenarios {
        let (_, sql, _) = sql_scenarios
            .iter()
            .find(|(name, _, _)| *name == base)
            .expect("parallel variant of a known scenario");
        let q = parse_query(sql).expect("benchmark SQL parses");

        // Correctness gate: byte-identical to the sequential engine (and
        // therefore to the row interpreter checked above) — thread count
        // must be unobservable to the DP layers.
        db.set_parallelism(1);
        let sequential = db.execute(&q).expect("query executes");
        db.set_parallelism(PARALLEL_WORKERS);
        let parallel = db.execute(&q).expect("query executes in parallel");
        assert_eq!(
            parallel, sequential,
            "parallel execution diverges on `{base}` — refusing to benchmark"
        );

        let med = median_ns(iters, || {
            std::hint::black_box(db.execute(&q).unwrap());
        });
        db.set_parallelism(1);
        let seq_med = median_ns(iters, || {
            std::hint::black_box(db.execute(&q).unwrap());
        });
        let scaling = seq_med as f64 / med.max(1) as f64;
        let name = format!("parallel-{base}");
        eprintln!(
            "{name:>26}: {med:>10} ns/op (sequential: {seq_med} ns/op, {scaling:.2}x at \
             {PARALLEL_WORKERS} workers)"
        );
        scenarios.push((
            name.clone(),
            Value::Object(vec![
                ("median_ns".to_string(), Value::from(med)),
                ("seq_median_ns".to_string(), Value::from(seq_med)),
                (
                    "scaling".to_string(),
                    Value::from((scaling * 100.0).round() / 100.0),
                ),
                ("workers".to_string(), Value::from(PARALLEL_WORKERS as u64)),
            ]),
        ));
        if let Some(floor) = floor {
            scaling_gate.push((name, scaling, floor));
        }
    }
    db.set_parallelism(1);

    // End-to-end sanity: the full FLEX pipeline (analysis + execution +
    // perturbation) over the vectorized path stays deterministic under a
    // fixed seed.
    {
        let params = PrivacyParams::new(0.1, 1e-9).expect("valid params");
        let opts = FlexOptions::new();
        let sql = "SELECT COUNT(*) FROM trips WHERE fare > 20";
        let a = run_sql_with(&db, sql, params, &mut StdRng::seed_from_u64(7), &opts)
            .expect("pipeline runs");
        let b = run_sql_with(&db, sql, params, &mut StdRng::seed_from_u64(7), &opts)
            .expect("pipeline runs");
        assert_eq!(a.rows, b.rows, "fixed-seed pipeline must be deterministic");
        assert_eq!(a.true_rows, b.true_rows, "true results must be stable");
    }

    // Cache-hit serving path: repeated query answered from the
    // noisy-answer cache. The service's own metrics report (full
    // pipeline traces, per-analyst budget burn) joins the artifact.
    let service_metrics = {
        let svc = QueryService::new(
            Arc::new(db),
            ServiceConfig {
                seed: Some(0xBE9C),
                ..ServiceConfig::default()
            },
        );
        let params = PrivacyParams::new(0.01, 1e-9).expect("valid params");
        let sql = "SELECT COUNT(*) FROM trips WHERE status = 'completed'";
        svc.query("warm", sql, params).expect("warmup query");
        let med = median_ns(cache_iters, || {
            std::hint::black_box(svc.query("reader", sql, params).unwrap());
        });
        eprintln!("{:>18}: {med:>10} ns/op", "cache-hit");
        scenarios.push((
            "cache-hit".to_string(),
            Value::Object(vec![("median_ns".to_string(), Value::from(med))]),
        ));
        svc.metrics().to_json()
    };

    // Hot-path contention storms (sharded cache hits, striped ledger
    // admission at 1→16 threads). Their 1-thread medians join the
    // baseline regression gate below; their scaling floors are enforced
    // at the end alongside the parallel-execution scaling gate.
    let contention_report = flex_bench::contention::run(args.quick);
    scenarios.extend(contention_report.scenarios.iter().cloned());

    let available_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The config block doubles as the baseline's capture-conditions
    // record (`--write-baseline` persists this same document): anyone
    // reading BENCH_exec.baseline.json can see how many cores the
    // capture machine had — and therefore whether its parallel medians
    // reflect real scaling — plus the platform and workload size.
    let report = json!({
        "config": {
            "quick": args.quick,
            "trips": trips,
            "iters": iters,
            "parallel_workers": PARALLEL_WORKERS,
            "available_cores": available_cores,
            "os": std::env::consts::OS,
            "arch": std::env::consts::ARCH,
        },
        "scenarios": Value::Object(scenarios),
    });
    let text = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&args.out, text.clone() + "\n").expect("write report");
    eprintln!("wrote {}", args.out);

    // Telemetry artifact: the benchmark-fed snapshot (per-scenario
    // traces, routing breakdown, latency histogram quantiles) plus the
    // cache-hit service's own metrics report, as one JSON document CI
    // uploads next to the bench numbers.
    let bench_report = MetricsReport {
        telemetry: telemetry.snapshot(),
        analysts: Vec::new(),
    };
    let telemetry_doc = json!({
        "bench": bench_report.to_json(),
        "service": service_metrics,
    });
    let telemetry_text = serde_json::to_string_pretty(&telemetry_doc).expect("serialize telemetry");
    std::fs::write(&args.telemetry_out, telemetry_text + "\n").expect("write telemetry");
    eprintln!("wrote {}", args.telemetry_out);
    if args.write_baseline {
        std::fs::write(&args.baseline, text + "\n").expect("write baseline");
        eprintln!("wrote {}", args.baseline);
    }

    // Machine-independent floors: every vectorized scenario must keep
    // its promised speedup over the row interpreter (both medians come
    // from this run, so runner speed cancels out). Floors are
    // per-scenario — the top-K pushdown must hold 10x, the rest 3x.
    let mut failed = false;
    let current = report.get("scenarios").and_then(Value::as_object).unwrap();
    for (name, speedup, floor) in &speedup_gate {
        if speedup < floor {
            eprintln!(
                "REGRESSION GATE: `{name}` vectorized speedup {speedup:.2}x is below \
                 its {floor}x floor"
            );
            failed = true;
        }
    }

    // Scaling floor for the morsel-parallel scenarios, also measured
    // entirely within this run. Enforced only when the runner actually
    // has PARALLEL_WORKERS cores: a 1- or 2-core runner cannot scale 2x
    // at 4 workers no matter how good the engine is, so there the
    // scaling is reported (and the baseline gate below still bounds the
    // absolute medians) without flaking the floor.
    if available_cores >= PARALLEL_WORKERS {
        for (name, scaling, floor) in &scaling_gate {
            if scaling < floor {
                eprintln!(
                    "REGRESSION GATE: `{name}` scales only {scaling:.2}x over the sequential \
                     engine at {PARALLEL_WORKERS} workers (floor {floor}x)"
                );
                failed = true;
            } else {
                eprintln!("gate ok: `{name}` scaling {scaling:.2}x (floor {floor}x)");
            }
        }
    } else {
        eprintln!(
            "runner has {available_cores} core(s) < {PARALLEL_WORKERS} workers: reporting \
             parallel scaling without enforcing the scaling floors"
        );
    }

    // Contention scaling floors (cache-hit throughput at 4 and 16
    // threads), each conditioned on its own core requirement.
    if flex_bench::contention::enforce_gates(&contention_report.gates, available_cores) {
        failed = true;
    }

    // Regression gate against the committed baseline, if present. Runner
    // hardware differs from the baseline machine, so raw medians are
    // normalized by this run's median cur/base ratio (the "machine
    // factor"): a uniformly slower runner passes, while one scenario
    // regressing relative to the rest fails.
    match std::fs::read_to_string(&args.baseline) {
        Err(_) => eprintln!(
            "no baseline at {} — skipping regression gate",
            args.baseline
        ),
        Ok(text) => {
            let baseline = serde_json::from_str(&text).expect("baseline parses");
            let empty = Vec::new();
            let base_scenarios = baseline
                .get("scenarios")
                .and_then(Value::as_object)
                .unwrap_or(&empty);
            let mut ratios: Vec<(String, f64)> = Vec::new();
            for (name, base_entry) in base_scenarios {
                let Some(base) = base_entry.get("median_ns").and_then(Value::as_f64) else {
                    continue;
                };
                let Some(cur) = current
                    .iter()
                    .find(|(n, _)| n == name)
                    .and_then(|(_, e)| e.get("median_ns"))
                    .and_then(Value::as_f64)
                else {
                    eprintln!("REGRESSION GATE: scenario `{name}` missing from current run");
                    failed = true;
                    continue;
                };
                ratios.push((name.clone(), cur / base.max(1.0)));
            }
            let mut sorted: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
            sorted.sort_by(f64::total_cmp);
            let machine_factor = if sorted.is_empty() {
                1.0
            } else {
                sorted[sorted.len() / 2].max(f64::MIN_POSITIVE)
            };
            eprintln!("machine factor vs baseline: {machine_factor:.2}x");
            for (name, ratio) in &ratios {
                let normalized = ratio / machine_factor;
                if normalized > REGRESSION_FACTOR {
                    eprintln!(
                        "REGRESSION GATE: `{name}` is {normalized:.2}x the baseline after \
                         machine-factor normalization (raw {ratio:.2}x, limit \
                         {REGRESSION_FACTOR}x)"
                    );
                    failed = true;
                } else {
                    eprintln!("gate ok: `{name}` {normalized:.2}x of baseline (raw {ratio:.2}x)");
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
