//! Reproduces paper Table 4: categorization of high-error queries.
//!
//! The paper manually examined 50 high-error queries and attributed the
//! error to: filters on an individual's data (8%), low-population
//! statistics (72%), or many-to-many joins inflating elastic sensitivity
//! (20%). Our workload queries carry those labels by construction, so the
//! categorization is exact rather than manual.

use flex_bench::{measure_workload, uber_db, write_json, Table};
use flex_core::FlexOptions;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("=== Table 4: why do high-error queries have high error? ===\n");
    let (db, wl) = uber_db(scale);
    let measured = measure_workload(
        &db,
        &wl,
        0.1,
        flex_bench::DEFAULT_TRIALS,
        &FlexOptions::new(),
        51,
    );

    // High error: > 100% median relative error (the paper's "More" bucket).
    let high: Vec<_> = measured
        .iter()
        .filter(|m| m.median_error_pct > 100.0)
        .collect();
    println!(
        "{} of {} measured queries have > 100% median error\n",
        high.len(),
        measured.len()
    );

    let mut individual = 0usize;
    let mut many_to_many = 0usize;
    let mut low_population = 0usize;
    for m in &high {
        if m.traits.targets_individual {
            individual += 1;
        } else if m.traits.many_to_many {
            many_to_many += 1;
        } else {
            // Everything else in the high-error set is low-population
            // statistics: filters shrink the row set until noise dominates.
            low_population += 1;
        }
    }
    let n = high.len().max(1) as f64;
    let mut t = Table::new(["Category", "measured %", "paper %"]);
    t.row([
        "Filters on individual's data".to_string(),
        format!("{:.0}", 100.0 * individual as f64 / n),
        "8".into(),
    ]);
    t.row([
        "Low-population statistics".to_string(),
        format!("{:.0}", 100.0 * low_population as f64 / n),
        "72".into(),
    ]);
    t.row([
        "Many-to-many join inflates elastic sensitivity".to_string(),
        format!("{:.0}", 100.0 * many_to_many as f64 / n),
        "20".into(),
    ]);
    t.print();

    println!("\nhigh-error queries:");
    let mut t = Table::new(["query", "population", "median error %", "category"]);
    for m in &high {
        let cat = if m.traits.targets_individual {
            "individual"
        } else if m.traits.many_to_many {
            "many-to-many"
        } else {
            "low population"
        };
        t.row([
            m.name.clone(),
            m.population.to_string(),
            format!("{:.0}", m.median_error_pct),
            cat.to_string(),
        ]);
    }
    t.print();
    println!(
        "\n(the first two categories are inherently sensitive — any DP\n\
         \x20 mechanism must answer them with high error; only the third is\n\
         \x20 elastic sensitivity's own looseness)"
    );

    write_json(
        "table4",
        &serde_json::json!({
            "high_error_queries": high.len(),
            "individual_pct": 100.0 * individual as f64 / n,
            "low_population_pct": 100.0 * low_population as f64 / n,
            "many_to_many_pct": 100.0 * many_to_many as f64 / n,
            "paper": {"individual_pct": 8, "low_population_pct": 72, "many_to_many_pct": 20},
        }),
    );
}
