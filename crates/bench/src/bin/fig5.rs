//! Reproduces paper Figure 5 / Table 3: FLEX on the TPC-H counting
//! queries (Q1, Q4, Q13, Q16, Q21), median error vs population size at
//! ε = 0.1, δ = n^(−ln n); customer/orders/lineitem/supplier/partsupp
//! private, region/nation/part public.

use flex_bench::{write_json, Table};
use flex_core::{run_sql, FlexError, PrivacyParams};
use flex_workloads::tpch::{self, TpchConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Population queries per TPC-H query: distinct primary-entity rows that
/// satisfy the filters (the paper's "population size" metric).
fn population_sql(name: &str) -> &'static str {
    match name {
        "Q1" => "SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= '1998-09-02'",
        "Q4" => {
            "SELECT COUNT(*) FROM orders WHERE o_orderdate >= '1993-07-01' \
             AND o_orderdate < '1993-10-01'"
        }
        "Q13" => "SELECT COUNT(*) FROM customer",
        "Q16" => {
            "SELECT COUNT(DISTINCT ps.ps_suppkey) FROM partsupp ps \
             JOIN part p ON p.p_partkey = ps.ps_partkey \
             WHERE p.p_brand <> 'Brand#45' AND p.p_size IN (1, 9, 19, 23, 36, 45)"
        }
        "Q21" => {
            "SELECT COUNT(*) FROM supplier s \
             JOIN lineitem l1 ON s.s_suppkey = l1.l_suppkey \
             JOIN orders o ON o.o_orderkey = l1.l_orderkey \
             JOIN nation n ON s.s_nationkey = n.n_nationkey \
             WHERE o.o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
             AND n.n_name = 'SAUDI ARABIA'"
        }
        other => panic!("unknown query {other}"),
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("=== Figure 5 / Table 3: TPC-H counting queries (scale {scale}) ===\n");
    let db = tpch::generate(&TpchConfig {
        scale,
        ..TpchConfig::default()
    });
    println!(
        "rows: lineitem {}, orders {}, customer {}, partsupp {}, supplier {}\n",
        db.table("lineitem").unwrap().len(),
        db.table("orders").unwrap().len(),
        db.table("customer").unwrap().len(),
        db.table("partsupp").unwrap().len(),
        db.table("supplier").unwrap().len(),
    );

    let delta = PrivacyParams::delta_for_db_size(db.total_rows());
    let params = PrivacyParams::new(0.1, delta).unwrap();
    let mut rng = StdRng::seed_from_u64(1234);

    // Paper-reported values (population, median error %) at SF 1.
    let paper: &[(&str, f64, f64, usize)] = &[
        ("Q1", 1_478_682.0, 0.00014, 0),
        ("Q4", 10_487.0, 0.001724, 1),
        ("Q13", 2_017.0, 0.009928, 1),
        ("Q16", 4.0, 4.407794, 2),
        ("Q21", 10.0, 2.009644, 3),
    ];

    let mut t = Table::new([
        "Query",
        "joins",
        "population",
        "median err %",
        "paper pop",
        "paper err %",
    ]);
    let mut rows = Vec::new();
    for (name, sql, joins) in tpch::queries() {
        let population = db
            .execute_sql(population_sql(name))
            .ok()
            .and_then(|rs| rs.scalar().and_then(|v| v.as_i64()))
            .unwrap_or(0);
        let trials = 15;
        let mut errs = Vec::new();
        let mut reject: Option<FlexError> = None;
        for _ in 0..trials {
            match run_sql(&db, sql, params, &mut rng) {
                Ok(r) => {
                    if let Some(e) = r.median_relative_error_pct() {
                        errs.push(e);
                    }
                }
                Err(e) => {
                    reject = Some(e);
                    break;
                }
            }
        }
        let p = paper.iter().find(|(n, ..)| n == &name).unwrap();
        match reject {
            Some(e) => {
                t.row([
                    name.to_string(),
                    joins.to_string(),
                    population.to_string(),
                    format!("rejected: {e}"),
                    format!("{:.0}", p.1),
                    format!("{:.4}", p.2),
                ]);
                rows.push(serde_json::json!({
                    "query": name, "population": population, "rejected": e.to_string(),
                }));
            }
            None => {
                errs.sort_by(f64::total_cmp);
                let med = errs.get(errs.len() / 2).copied().unwrap_or(f64::NAN);
                t.row([
                    name.to_string(),
                    joins.to_string(),
                    population.to_string(),
                    format!("{med:.4}"),
                    format!("{:.0}", p.1),
                    format!("{:.4}", p.2),
                ]);
                rows.push(serde_json::json!({
                    "query": name, "joins": joins, "population": population,
                    "median_error_pct": med, "paper_population": p.1,
                    "paper_error_pct": p.2,
                }));
            }
        }
    }
    t.print();
    println!(
        "\n(expected shape: error falls with population; the many-join Q21 and\n\
         \x20 tiny-population Q16 sit orders of magnitude above Q1/Q4/Q13)"
    );

    write_json(
        "fig5",
        &serde_json::json!({"scale": scale, "queries": rows}),
    );
}
