//! Reproduces the paper's §3.4 worked example: elastic sensitivity of the
//! triangle-counting query on a graph with max-frequency metric 65,
//! smoothed at ε = 0.7, and an end-to-end FLEX release.

use flex_bench::write_json;
use flex_core::{analyze, run_sql, PrivacyParams, SensExpr};
use flex_workloads::graph::{self, GraphConfig, TRIANGLE_SQL};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("=== §3.4 example: counting triangles ===\n");
    let cfg = GraphConfig::default();
    let db = graph::graph_database(&cfg);
    println!(
        "graph: {} edges, mf(source) = {:?}, mf(dest) = {:?} (paper: 65)",
        db.table("edges").unwrap().len(),
        db.metrics().max_freq("edges", "source").unwrap(),
        db.metrics().max_freq("edges", "dest").unwrap(),
    );

    let q = flex_sql::parse_query(TRIANGLE_SQL).unwrap();
    let a = analyze(&q, &db).unwrap();
    let ours = a.sensitivity();
    let poly = ours.as_poly().expect("self-join-only query is polynomial");
    println!("\nElastic sensitivity Ŝ(k):");
    println!("  per Figure 1 definition : {poly}");
    println!("  paper's walkthrough     : 2k^2 + 264k + 8711 (uses mf_k of the base table)");
    println!("  paper as printed        : 2k^2 + 199k + 8711 (arithmetic slip)");

    let epsilon = 0.7;
    let n = db.total_rows();
    println!("\nSmoothing with ε = {epsilon}:");
    let paper_poly = SensExpr::Poly(flex_core::Poly::from_coeffs(vec![8711.0, 199.0, 2.0]));
    let walkthrough_poly = SensExpr::Poly(flex_core::Poly::from_coeffs(vec![8711.0, 264.0, 2.0]));
    let mut rows = Vec::new();
    for (label, sens, delta) in [
        ("figure-1 definition, δ=1e-8", &ours, 1e-8),
        ("figure-1 definition, δ=1e-7", &ours, 1e-7),
        ("paper walkthrough,   δ=1e-7", &walkthrough_poly, 1e-7),
        ("paper as printed,    δ=1e-7", &paper_poly, 1e-7),
        ("paper as printed,    δ=1e-8", &paper_poly, 1e-8),
    ] {
        let params = PrivacyParams::new(epsilon, delta).unwrap();
        let s = flex_core::smooth(sens, params, n.max(10_000_000)).unwrap();
        println!(
            "  {label}: S = {:.2} at k = {} (noise scale 2S/ε = {:.1})",
            s.smooth_bound, s.argmax_k, s.noise_scale
        );
        rows.push(serde_json::json!({
            "variant": label, "S": s.smooth_bound, "k": s.argmax_k,
        }));
    }
    println!("  (paper reports S = 8896.95 at k = 19 — matched by the printed");
    println!("   polynomial with δ = 1e-7, not the stated 1e-8; see EXPERIMENTS.md)");

    // End-to-end private release.
    let truth = graph::count_triangles(db.table("edges").unwrap());
    let params = PrivacyParams::new(epsilon, 1e-8).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let r = run_sql(&db, TRIANGLE_SQL, params, &mut rng).unwrap();
    let noised = r.scalar().unwrap();
    println!("\nEnd-to-end FLEX release:");
    println!("  true triangle count   : {truth}");
    println!("  private triangle count: {noised:.1}");
    println!(
        "  noise scale           : {:.1}",
        r.column_sensitivity[0].unwrap().noise_scale
    );
    println!(
        "  (with sensitivity in the thousands, small triangle counts are\n\
         \x20  dominated by noise — exactly the paper's point that wPINQ-style\n\
         \x20  targeted analyses beat generic mechanisms on this workload)"
    );

    write_json(
        "triangles",
        &serde_json::json!({
            "our_polynomial": format!("{poly}"),
            "paper_walkthrough": "2k^2 + 264k + 8711",
            "paper_printed": "2k^2 + 199k + 8711",
            "paper_reported_S": 8896.95,
            "paper_reported_k": 19,
            "smoothing": rows,
            "true_triangles": truth,
            "noised_triangles": noised,
        }),
    );
}
