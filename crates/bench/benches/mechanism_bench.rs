//! Criterion benchmarks for the end-to-end FLEX pipeline and the
//! perturbation stage (the "Output Perturbation" row of Table 2), plus the
//! wPINQ baseline join.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flex_core::{laplace, run_sql, PrivacyParams};
use flex_mechanisms::WeightedDataset;
use flex_workloads::uber::{self, UberConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mechanism(c: &mut Criterion) {
    let db = uber::generate(&UberConfig {
        trips: 20_000,
        drivers: 1_000,
        riders: 2_000,
        user_tags: 1_000,
        ..UberConfig::default()
    });
    let params = PrivacyParams::new(0.1, 1e-8).unwrap();

    let mut g = c.benchmark_group("flex_end_to_end");
    g.sample_size(20);
    for (name, sql) in [
        (
            "count",
            "SELECT COUNT(*) FROM trips WHERE status = 'completed'",
        ),
        (
            "join_count",
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id",
        ),
        (
            "public_histogram",
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
             GROUP BY c.name",
        ),
    ] {
        g.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| run_sql(&db, black_box(sql), params, &mut rng).unwrap())
        });
    }
    g.finish();

    c.bench_function("laplace_sampling_1k", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += laplace(&mut rng, 10.0);
            }
            black_box(acc)
        })
    });

    c.bench_function("wpinq_weighted_join", |b| {
        let trips = WeightedDataset::from_table(db.table("trips").unwrap());
        let drivers = WeightedDataset::from_table(db.table("drivers").unwrap()).with_columns(vec![
            "d_id".into(),
            "d_city".into(),
            "d_vehicle".into(),
            "d_status".into(),
            "d_signup".into(),
        ]);
        b.iter(|| black_box(trips.join("driver_id", &drivers, "d_id").total_weight()))
    });
}

criterion_group!(benches, bench_mechanism);
criterion_main!(benches);
