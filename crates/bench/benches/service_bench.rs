//! Criterion benchmarks for the `flex-service` serving path: cache-hit
//! serving vs. the full pipeline, and ledger admission overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flex_core::PrivacyParams;
use flex_service::{BudgetLedger, LedgerPolicy, QueryService, ServiceConfig};
use flex_workloads::uber::{self, UberConfig};
use std::sync::Arc;

fn bench_service(c: &mut Criterion) {
    let db = Arc::new(uber::generate(&UberConfig {
        trips: 10_000,
        drivers: 500,
        riders: 1_000,
        user_tags: 500,
        ..UberConfig::default()
    }));
    let params = PrivacyParams::new(0.01, 1e-9).unwrap();
    let sql = "SELECT COUNT(*) FROM trips WHERE status = 'completed'";

    let mut g = c.benchmark_group("service");
    g.sample_size(20);

    // Serving a repeated query from the noisy-answer cache: the hot path
    // a deployment sees under heavy repeated traffic.
    g.bench_function("cache_hit", |b| {
        let svc = QueryService::new(Arc::clone(&db), ServiceConfig::default());
        svc.query("warm", sql, params).unwrap();
        b.iter(|| svc.query("reader", black_box(sql), params).unwrap())
    });

    // The same query with the cache disabled: full admission + parse +
    // analyze + execute + noise every time.
    g.bench_function("full_pipeline", |b| {
        let cfg = ServiceConfig {
            cache_capacity: 0,
            policy: LedgerPolicy::sequential(f64::MAX, 0.999_999),
            ..ServiceConfig::default()
        };
        let svc = QueryService::new(Arc::clone(&db), cfg);
        b.iter(|| svc.query("a", black_box(sql), params).unwrap())
    });

    g.finish();

    // Ledger admission on its own: the per-request bookkeeping overhead.
    c.bench_function("ledger_charge_refund", |b| {
        let ledger = BudgetLedger::new(LedgerPolicy::sequential(f64::MAX, 0.999_999));
        b.iter(|| {
            let charge = ledger.try_charge("a", 0.01, 1e-12).unwrap();
            ledger.refund(black_box(&charge));
        })
    });
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
