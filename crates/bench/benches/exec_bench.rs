//! Criterion benchmarks for the database substrate (the "Original query"
//! row of paper Table 2 — execution dominates the pipeline).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flex_sql::parse_query;
use flex_workloads::uber::{self, UberConfig};

fn bench_exec(c: &mut Criterion) {
    let db = uber::generate(&UberConfig {
        trips: 20_000,
        drivers: 1_000,
        riders: 2_000,
        user_tags: 1_000,
        ..UberConfig::default()
    });

    let cases = [
        ("count_scan", "SELECT COUNT(*) FROM trips WHERE fare > 20"),
        (
            "hash_join_count",
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id \
             WHERE d.status = 'active'",
        ),
        (
            "group_by_histogram",
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id \
             GROUP BY c.name",
        ),
        (
            "count_distinct",
            "SELECT COUNT(DISTINCT driver_id) FROM trips WHERE status = 'completed'",
        ),
        (
            "order_limit",
            "SELECT driver_id, COUNT(*) AS n FROM trips GROUP BY driver_id \
             ORDER BY n DESC LIMIT 10",
        ),
    ];

    let mut g = c.benchmark_group("query_execution");
    g.sample_size(20);
    for (name, sql) in cases {
        let q = parse_query(sql).unwrap();
        g.bench_function(name, |b| b.iter(|| db.execute(black_box(&q)).unwrap()));
    }
    g.finish();

    // Metrics collection (trigger-style refresh cost).
    let mut db2 = db.clone();
    c.bench_function("metrics_recompute", |b| {
        b.iter(|| {
            db2.recompute_metrics();
            black_box(db2.metrics().len())
        })
    });
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
