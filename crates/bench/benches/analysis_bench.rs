//! Criterion microbenchmarks for the elastic-sensitivity analysis stage
//! (the "Elastic Sensitivity Analysis" row of paper Table 2: 7.03 ms
//! average on the paper's corpus).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flex_core::{analyze, smooth, PrivacyParams};
use flex_sql::parse_query;
use flex_workloads::graph::{self, GraphConfig, TRIANGLE_SQL};
use flex_workloads::uber::{self, UberConfig};

fn bench_analysis(c: &mut Criterion) {
    let db = uber::generate(&UberConfig {
        trips: 10_000,
        drivers: 500,
        riders: 1_000,
        user_tags: 500,
        ..UberConfig::default()
    });
    let gdb = graph::graph_database(&GraphConfig {
        nodes: 200,
        edges: 1_000,
        ..GraphConfig::default()
    });

    let cases = [
        ("no_join", "SELECT COUNT(*) FROM trips WHERE status = 'completed'"),
        (
            "one_join",
            "SELECT COUNT(*) FROM trips t JOIN drivers d ON t.driver_id = d.id",
        ),
        (
            "histogram_public_join",
            "SELECT c.name, COUNT(*) FROM trips t JOIN cities c ON t.city_id = c.id GROUP BY c.name",
        ),
        (
            "three_joins",
            "SELECT COUNT(*) FROM trips t \
             JOIN drivers d ON t.driver_id = d.id \
             JOIN analytics a ON d.id = a.driver_id \
             JOIN cities c ON t.city_id = c.id",
        ),
    ];

    let mut g = c.benchmark_group("elastic_sensitivity_analysis");
    for (name, sql) in cases {
        let q = parse_query(sql).unwrap();
        g.bench_function(name, |b| b.iter(|| analyze(black_box(&q), &db).unwrap()));
    }
    let tri = parse_query(TRIANGLE_SQL).unwrap();
    g.bench_function("triangle_self_joins", |b| {
        b.iter(|| analyze(black_box(&tri), &gdb).unwrap())
    });
    g.finish();

    // Parsing alone.
    c.bench_function("parse_triangle_query", |b| {
        b.iter(|| parse_query(black_box(TRIANGLE_SQL)).unwrap())
    });

    // Smoothing a degree-2 polynomial.
    let a = analyze(&tri, &gdb).unwrap();
    let sens = a.sensitivity();
    let params = PrivacyParams::new(0.7, 1e-8).unwrap();
    c.bench_function("smooth_triangle_sensitivity", |b| {
        b.iter(|| smooth(black_box(&sens), params, 1_000_000).unwrap())
    });
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
